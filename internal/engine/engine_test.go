// Tests live in an external package because internal/experiments (used
// here for corpus building) itself imports the engine.
package engine_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"tableseg/internal/core"
	"tableseg/internal/engine"
	"tableseg/internal/experiments"
	"tableseg/internal/sitegen"
)

// corpusInputs builds one Input per list page of the full synthetic
// corpus (12 sites, 24 pages).
func corpusInputs(t testing.TB) []core.Input {
	t.Helper()
	var inputs []core.Input
	for _, p := range sitegen.Profiles() {
		site := sitegen.Generate(p, experiments.DefaultSeed)
		for pageIdx := range site.Lists {
			inputs = append(inputs, experiments.BuildInput(site, pageIdx))
		}
	}
	return inputs
}

// siteInput builds one Input for a single named site.
func siteInput(t testing.TB, slug string, pageIdx int) core.Input {
	t.Helper()
	p, err := sitegen.ProfileBySlug(slug)
	if err != nil {
		t.Fatal(err)
	}
	return experiments.BuildInput(sitegen.Generate(p, experiments.DefaultSeed), pageIdx)
}

// TestEngineMatchesSerial is the determinism contract: a concurrent
// batch over the whole corpus produces segmentations deeply equal to
// serial core.Segment calls, for both methods.
func TestEngineMatchesSerial(t *testing.T) {
	inputs := corpusInputs(t)
	for _, m := range []core.Method{core.Probabilistic, core.CSP} {
		opts := core.DefaultOptions(m)
		serial := make([]*core.Segmentation, len(inputs))
		for i, in := range inputs {
			seg, err := core.SegmentContext(context.Background(), in, opts)
			if err != nil {
				t.Fatalf("%v serial input %d: %v", m, i, err)
			}
			serial[i] = seg
		}
		eng, err := engine.New(engine.Config{Options: opts, Concurrency: 2 * runtime.GOMAXPROCS(0)})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range eng.SegmentAll(context.Background(), inputs) {
			if r.Err != nil {
				t.Fatalf("%v engine input %d: %v", m, i, r.Err)
			}
			if !reflect.DeepEqual(r.Seg, serial[i]) {
				t.Errorf("%v input %d: engine segmentation differs from serial", m, i)
			}
		}
	}
}

// TestEngineTemplateCache verifies per-site prep reuse: tasks sharing
// the same sample list pages hit the cache, distinct sites do not.
func TestEngineTemplateCache(t *testing.T) {
	inA0 := siteInput(t, "allegheny", 0)
	inA1 := siteInput(t, "allegheny", 1) // same site: same sample list pages
	inB0 := siteInput(t, "butler", 0)
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.RunTasks(context.Background(), []engine.Task{
		{ID: "a0", Input: inA0},
		{ID: "a1", Input: inA1},
		{ID: "a0-again", Input: inA0},
		{ID: "b0", Input: inB0},
	})
	wantHits := []bool{false, true, true, false}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("task %s: %v", r.ID, r.Err)
		}
		if r.Stats.TemplateCacheHit != wantHits[i] {
			t.Errorf("task %s: TemplateCacheHit = %v, want %v", r.ID, r.Stats.TemplateCacheHit, wantHits[i])
		}
	}
	if got := eng.CachedSites(); got != 2 {
		t.Errorf("CachedSites() = %d, want 2", got)
	}
}

// TestEngineDisableCache verifies that DisableCache forces a fresh prep
// for every task.
func TestEngineDisableCache(t *testing.T) {
	in := siteInput(t, "allegheny", 0)
	eng, err := engine.New(engine.Config{
		Options:      core.DefaultOptions(core.CSP),
		Concurrency:  1,
		DisableCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.RunTasks(context.Background(), []engine.Task{{Input: in}, {Input: in}})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("task %d: %v", i, r.Err)
		}
		if r.Stats.TemplateCacheHit {
			t.Errorf("task %d: cache hit with DisableCache", i)
		}
	}
	if got := eng.CachedSites(); got != 0 {
		t.Errorf("CachedSites() = %d, want 0", got)
	}
}

// TestEnginePerTaskOptions verifies that a task-level options override
// takes effect (the Table 4 harness relies on this to score one page
// under both methods against a shared site prep).
func TestEnginePerTaskOptions(t *testing.T) {
	in := siteInput(t, "allegheny", 0)
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic), Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	cspOpts := core.DefaultOptions(core.CSP)
	results := eng.RunTasks(context.Background(), []engine.Task{
		{ID: "prob", Input: in},
		{ID: "csp", Input: in, Options: &cspOpts},
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("task %s: %v", r.ID, r.Err)
		}
	}
	if results[0].Stats.EMIters == 0 {
		t.Error("probabilistic task ran no EM iterations")
	}
	if results[1].Stats.WSATRestarts == 0 {
		t.Error("CSP override task ran no WSAT restarts")
	}
}

// TestEngineStats verifies the instrumentation record is populated.
func TestEngineStats(t *testing.T) {
	in := siteInput(t, "allegheny", 0)
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic), Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Segment(context.Background(), in)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	st := r.Stats
	if st.Wall <= 0 {
		t.Error("Wall not recorded")
	}
	if st.TokenizeTime <= 0 || st.TemplateTime < 0 || st.ExtractTime <= 0 || st.SolveTime <= 0 {
		t.Errorf("stage times not recorded: %+v", st.Stats)
	}
	if sum := st.TokenizeTime + st.TemplateTime + st.ExtractTime + st.SolveTime; sum > st.Wall {
		t.Errorf("stage times %v exceed wall %v", sum, st.Wall)
	}
	if st.EMIters == 0 {
		t.Error("EMIters not recorded")
	}
}

// TestEngineStream exercises the channel API: results arrive in
// completion order but cover every submitted task exactly once, with
// indices and IDs intact.
func TestEngineStream(t *testing.T) {
	in := siteInput(t, "allegheny", 0)
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP)})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	tasks := make(chan engine.Task)
	go func() {
		defer close(tasks)
		for i := 0; i < n; i++ {
			tasks <- engine.Task{ID: fmt.Sprintf("t%d", i), Input: in}
		}
	}()
	seen := make(map[int]string)
	for r := range eng.Stream(context.Background(), tasks) {
		if r.Err != nil {
			t.Fatalf("task %s: %v", r.ID, r.Err)
		}
		if prev, dup := seen[r.Index]; dup {
			t.Fatalf("index %d reported twice (%s, %s)", r.Index, prev, r.ID)
		}
		seen[r.Index] = r.ID
	}
	if len(seen) != n {
		t.Fatalf("got %d results, want %d", len(seen), n)
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("t%d", i); seen[i] != want {
			t.Errorf("index %d carried ID %q, want %q", i, seen[i], want)
		}
	}
}

// TestEngineCancellation verifies batch accounting under cancellation:
// every submitted task is reported, unstarted tasks carry ctx.Err(),
// and any task that did complete is a valid segmentation.
func TestEngineCancellation(t *testing.T) {
	inputs := corpusInputs(t)
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic), Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tasks := make(chan engine.Task)
	go func() {
		defer close(tasks)
		for _, in := range inputs {
			tasks <- engine.Task{Input: in}
		}
	}()
	out := eng.Stream(ctx, tasks)
	first := <-out // let the batch get under way, then pull the plug
	if first.Err != nil && !errors.Is(first.Err, context.Canceled) {
		t.Fatalf("first result: %v", first.Err)
	}
	cancel()
	got, canceled := 1, 0
	for r := range out {
		got++
		switch {
		case r.Err == nil:
			if r.Seg == nil {
				t.Errorf("task %d: nil segmentation without error", r.Index)
			}
		case errors.Is(r.Err, context.Canceled):
			canceled++
		default:
			t.Errorf("task %d: unexpected error %v", r.Index, r.Err)
		}
	}
	if got != len(inputs) {
		t.Fatalf("got %d results for %d tasks", got, len(inputs))
	}
	if canceled == 0 {
		t.Error("no task observed the cancellation")
	}
}

// TestEngineConfigValidation verifies typed rejection of bad configs.
func TestEngineConfigValidation(t *testing.T) {
	if _, err := engine.New(engine.Config{Concurrency: -1}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("negative concurrency: err = %v, want ErrBadOptions", err)
	}
	bad := core.DefaultOptions(core.CSP)
	bad.MinSlotQuality = 2
	if _, err := engine.New(engine.Config{Options: bad}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("bad options: err = %v, want ErrBadOptions", err)
	}
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP)})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Concurrency() != runtime.GOMAXPROCS(0) {
		t.Errorf("default Concurrency() = %d, want GOMAXPROCS %d", eng.Concurrency(), runtime.GOMAXPROCS(0))
	}
}

// TestEngineTokenCache verifies the content-addressed token cache: a
// repeated input re-reads every page from cache, the engine aggregates
// the counters, and DisableCache keeps them at zero.
func TestEngineTokenCache(t *testing.T) {
	in := siteInput(t, "allegheny", 0)
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.RunTasks(context.Background(), []engine.Task{
		{ID: "first", Input: in},
		{ID: "second", Input: in},
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("task %s: %v", r.ID, r.Err)
		}
	}
	first, second := results[0].Stats, results[1].Stats
	if first.TokenCacheMisses == 0 {
		t.Errorf("first task: TokenCacheMisses = 0, want every page tokenized")
	}
	if first.TokenCacheHits != 0 {
		t.Errorf("first task: TokenCacheHits = %d, want 0 on a cold cache", first.TokenCacheHits)
	}
	// The second task re-reads every page from the store: the template
	// hit rebuilds the prep from the cached list-page streams, and each
	// detail page is re-read from cache.
	if second.TokenCacheMisses != 0 {
		t.Errorf("second task: TokenCacheMisses = %d, want 0", second.TokenCacheMisses)
	}
	if want := len(in.ListPages) + len(in.DetailPages); second.TokenCacheHits != want {
		t.Errorf("second task: TokenCacheHits = %d, want %d (lists+details)", second.TokenCacheHits, want)
	}
	cs := eng.CacheStats()
	wantHits := int64(first.TokenCacheHits + second.TokenCacheHits)
	wantMisses := int64(first.TokenCacheMisses + second.TokenCacheMisses)
	if cs.TokenHits != wantHits || cs.TokenMisses != wantMisses {
		t.Errorf("CacheStats token = %d/%d hits/misses, want %d/%d", cs.TokenHits, cs.TokenMisses, wantHits, wantMisses)
	}
	if cs.TemplateHits != 1 || cs.TemplateMisses != 1 {
		t.Errorf("CacheStats template = %d/%d hits/misses, want 1/1", cs.TemplateHits, cs.TemplateMisses)
	}

	off, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range off.RunTasks(context.Background(), []engine.Task{{Input: in}, {Input: in}}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Stats.TokenCacheHits != 0 || r.Stats.TokenCacheMisses != 0 {
			t.Errorf("DisableCache task counted token lookups: %d/%d", r.Stats.TokenCacheHits, r.Stats.TokenCacheMisses)
		}
	}
	if cs := off.CacheStats(); cs.TokenHits != 0 || cs.TokenMisses != 0 ||
		cs.TemplateHits != 0 || cs.TemplateMisses != 0 ||
		cs.ResultHits != 0 || cs.ResultMisses != 0 || cs.Tiers != nil {
		t.Errorf("DisableCache CacheStats = %+v, want zero", cs)
	}
}

// TestEngineNoGoroutineLeak pins the goroleak contract at runtime: a
// completed batch and a cancelled batch must both wind their worker,
// feeder and closer goroutines down once the result stream is drained.
// The settle loop absorbs scheduler lag (goroutines that have returned
// but not yet been reaped from the count).
func TestEngineNoGoroutineLeak(t *testing.T) {
	inputs := corpusInputs(t)[:6]
	base := runtime.NumGoroutine()

	// Completed batch: every task runs to completion.
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic), Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.SegmentAll(context.Background(), inputs)
	if len(results) != len(inputs) {
		t.Fatalf("got %d results for %d inputs", len(results), len(inputs))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("task %d: %v", r.Index, r.Err)
		}
	}
	if n := settledGoroutines(base); n > base {
		t.Errorf("completed batch leaked goroutines: %d before, %d after settling", base, n)
	}

	// Cancelled batch: the context dies mid-stream while the feeder
	// still holds undelivered tasks; the stream must still account for
	// every task and every goroutine must exit once it is drained.
	ctx, cancel := context.WithCancel(context.Background())
	tasks := make(chan engine.Task)
	go func() {
		defer close(tasks)
		for _, in := range inputs {
			tasks <- engine.Task{Input: in}
		}
	}()
	out := eng.Stream(ctx, tasks)
	<-out // let the batch get under way, then pull the plug
	cancel()
	got := 1
	for range out {
		got++
	}
	if got != len(inputs) {
		t.Fatalf("cancelled batch reported %d results for %d tasks", got, len(inputs))
	}
	if n := settledGoroutines(base); n > base {
		t.Errorf("cancelled batch leaked goroutines: %d before, %d after settling", base, n)
	}
}

// settledGoroutines polls runtime.NumGoroutine until it drops to the
// baseline or a deadline passes, returning the last observed count.
func settledGoroutines(base int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 200 && n > base; i++ {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestEngineSubmitMatchesSerial pins the Submit surface to the serial
// contract: results delivered through the one-off submission channel
// are deeply equal to serial core.Segment calls, and each channel is
// closed after its single result.
func TestEngineSubmitMatchesSerial(t *testing.T) {
	inputs := corpusInputs(t)[:4]
	opts := core.DefaultOptions(core.Probabilistic)
	eng, err := engine.New(engine.Config{Options: opts, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i, in := range inputs {
		serial, err := core.SegmentContext(context.Background(), in, opts)
		if err != nil {
			t.Fatalf("serial input %d: %v", i, err)
		}
		ch, err := eng.Submit(context.Background(), engine.Task{ID: fmt.Sprint(i), Input: in})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		r, ok := <-ch
		if !ok {
			t.Fatalf("submit %d: channel closed without a result", i)
		}
		if r.Err != nil {
			t.Fatalf("submit %d: %v", i, r.Err)
		}
		if r.ID != fmt.Sprint(i) {
			t.Errorf("submit %d: ID = %q", i, r.ID)
		}
		if !reflect.DeepEqual(r.Seg, serial) {
			t.Errorf("submit %d: segmentation differs from serial", i)
		}
		if _, ok := <-ch; ok {
			t.Errorf("submit %d: channel delivered a second value", i)
		}
	}
}

// TestEngineSubmitAfterClose verifies the lifecycle contract: Close
// waits for admitted submissions, further Submits fail with ErrClosed,
// and Close is idempotent.
func TestEngineSubmitAfterClose(t *testing.T) {
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := eng.Submit(context.Background(), engine.Task{Input: siteInput(t, "allegheny", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Close returned, so the admitted submission's result must already
	// be buffered.
	select {
	case r := <-ch:
		if r.Err != nil {
			t.Fatalf("admitted submission failed: %v", r.Err)
		}
	default:
		t.Fatal("Close returned before the admitted submission delivered")
	}
	if _, err := eng.Submit(context.Background(), engine.Task{Input: siteInput(t, "allegheny", 0)}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestEngineSubmitCancelWhileQueued covers the slot-wait path: with one
// worker slot held by a long submission, a second submission whose
// context dies while queued reports ctx.Err() and frees its goroutine.
func TestEngineSubmitCancelWhileQueued(t *testing.T) {
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic), Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	first, err := eng.Submit(context.Background(), engine.Task{Input: siteInput(t, "allegheny", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	second, err := eng.Submit(ctx, engine.Task{ID: "queued", Input: siteInput(t, "butler", 0)})
	if err != nil {
		t.Fatal(err)
	}
	r := <-second
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("queued submission: err = %v, want context.Canceled", r.Err)
	}
	if r.ID != "queued" {
		t.Errorf("queued submission: ID = %q", r.ID)
	}
	if r := <-first; r.Err != nil {
		t.Fatalf("running submission: %v", r.Err)
	}
}

// TestEngineStreamNoGoroutineLeak extends the goroleak contract to the
// redesigned surface: a drained Stream and a Closed engine with Submit
// traffic both wind every goroutine down.
func TestEngineStreamNoGoroutineLeak(t *testing.T) {
	inputs := corpusInputs(t)[:6]
	base := runtime.NumGoroutine()

	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	tasks := make(chan engine.Task, len(inputs))
	for _, in := range inputs {
		tasks <- engine.Task{Input: in}
	}
	close(tasks)
	got := 0
	for r := range eng.Stream(context.Background(), tasks) {
		if r.Err != nil {
			t.Fatalf("task %d: %v", r.Index, r.Err)
		}
		got++
	}
	if got != len(inputs) {
		t.Fatalf("stream delivered %d results for %d tasks", got, len(inputs))
	}
	if n := settledGoroutines(base); n > base {
		t.Errorf("drained Stream leaked goroutines: %d before, %d after settling", base, n)
	}

	var chans []<-chan engine.Result
	for _, in := range inputs {
		ch, err := eng.Submit(context.Background(), engine.Task{Input: in})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatalf("submission %d: %v", i, r.Err)
		}
	}
	if n := settledGoroutines(base); n > base {
		t.Errorf("closed engine leaked goroutines: %d before, %d after settling", base, n)
	}
}

// TestEngineObserver verifies the Config.Observer seam: every task
// reports every pipeline stage to the configured observer, mirroring
// its own Stats breakdown.
func TestEngineObserver(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	obs := observerFunc{onEnd: func(name string, d time.Duration, err error) {
		mu.Lock()
		counts[name]++
		mu.Unlock()
	}}
	eng, err := engine.New(engine.Config{
		Options: core.DefaultOptions(core.Probabilistic), Concurrency: 2, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := corpusInputs(t)[:4]
	for _, r := range eng.SegmentAll(context.Background(), inputs) {
		if r.Err != nil {
			t.Fatalf("task %d: %v", r.Index, r.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, name := range []string{"Tokenize", "InduceTemplate", "SelectSlot", "Extract", "Observe", "Segment", "PostProcess"} {
		if counts[name] < len(inputs) {
			t.Errorf("observer saw %d %s ends for %d tasks", counts[name], name, len(inputs))
		}
	}
}

// observerFunc adapts a function to stage.Observer for tests.
type observerFunc struct {
	onEnd func(name string, d time.Duration, err error)
}

func (o observerFunc) OnStageStart(name string) {}
func (o observerFunc) OnStageEnd(name string, d time.Duration, err error) {
	if o.onEnd != nil {
		o.onEnd(name, d, err)
	}
}

// TestEngineInputKey pins the coalescing key: identical content shares
// a key regardless of page names; any content, target or detail change
// separates keys.
func TestEngineInputKey(t *testing.T) {
	in := siteInput(t, "allegheny", 0)
	same := siteInput(t, "allegheny", 0)
	for i := range same.ListPages {
		same.ListPages[i].Name = fmt.Sprintf("renamed-%d", i)
	}
	if engine.InputKey(in) != engine.InputKey(same) {
		t.Error("renaming pages changed the input key")
	}
	other := siteInput(t, "allegheny", 1)
	if engine.InputKey(in) == engine.InputKey(other) {
		t.Error("different target pages share an input key")
	}
	mutated := siteInput(t, "allegheny", 0)
	mutated.DetailPages[0].HTML += " "
	if engine.InputKey(in) == engine.InputKey(mutated) {
		t.Error("detail-page edit did not change the input key")
	}
}
