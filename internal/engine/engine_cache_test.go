// Tests for the content-addressed artifact store behind the engine:
// tier configuration, per-tier counters, and batch checkpoint/resume.
package engine_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tableseg/internal/artifact"
	"tableseg/internal/core"
	"tableseg/internal/engine"
)

// tierByName extracts one tier's snapshot from a CacheStats.
func tierByName(t *testing.T, cs engine.CacheStats, name string) artifact.Stats {
	t.Helper()
	for _, tier := range cs.Tiers {
		if tier.Tier == name {
			return tier
		}
	}
	t.Fatalf("no %q tier in %+v", name, cs.Tiers)
	return artifact.Stats{}
}

// TestEngineCacheConfigValidation covers the new Config fields' typed
// rejection.
func TestEngineCacheConfigValidation(t *testing.T) {
	cases := map[string]engine.Config{
		"negative-memory": {CacheMemoryBytes: -1},
		"negative-disk":   {CacheDiskBytes: -1},
		"resume-no-cache": {Resume: true, DisableCache: true},
	}
	for name, cfg := range cases {
		cfg.Options = core.DefaultOptions(core.CSP)
		if _, err := engine.New(cfg); !errors.Is(err, core.ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", name, err)
		}
	}
	// An unusable cache directory must fail loudly, not degrade.
	cfg := engine.Config{Options: core.DefaultOptions(core.CSP), CacheDir: "/dev/null/not-a-dir"}
	if _, err := engine.New(cfg); err == nil {
		t.Error("unusable CacheDir did not error")
	}
}

// TestEngineMemoryTierBounded verifies the no-disk default: the token
// cache is a bounded LRU, and evictions surface in CacheStats.Tiers.
func TestEngineMemoryTierBounded(t *testing.T) {
	inputs := corpusInputs(t)
	// A budget far smaller than the corpus's token streams forces
	// evictions while the batch still completes correctly.
	eng, err := engine.New(engine.Config{
		Options:          core.DefaultOptions(core.CSP),
		Concurrency:      2,
		CacheMemoryBytes: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range eng.RunTasks(context.Background(), tasksFor(inputs)) {
		if r.Err != nil {
			t.Fatalf("task %d: %v", r.Index, r.Err)
		}
	}
	mem := tierByName(t, eng.CacheStats(), "memory")
	if mem.Evictions == 0 {
		t.Errorf("no evictions under a %d-byte budget: %+v", 32<<10, mem)
	}
	if mem.Bytes > 32<<10 {
		t.Errorf("memory tier holds %d bytes, budget %d", mem.Bytes, 32<<10)
	}
}

func tasksFor(inputs []core.Input) []engine.Task {
	tasks := make([]engine.Task, len(inputs))
	for i := range inputs {
		tasks[i] = engine.Task{Input: inputs[i]}
	}
	return tasks
}

// TestEngineWarmDiskCache is the warm-start contract: a second engine
// over the same cache directory re-tokenizes zero byte-identical pages
// — every lookup is served by the disk tier — and produces a deeply
// equal segmentation.
func TestEngineWarmDiskCache(t *testing.T) {
	dir := t.TempDir()
	in := siteInput(t, "allegheny", 0)

	cold, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r1 := cold.Segment(context.Background(), in)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if cs := cold.CacheStats(); cs.TokenMisses == 0 {
		t.Fatalf("cold run tokenized nothing: %+v", cs)
	}

	warm, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r2 := warm.Segment(context.Background(), in)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !reflect.DeepEqual(r2.Seg, r1.Seg) {
		t.Error("warm-cache segmentation differs from cold run")
	}
	cs := warm.CacheStats()
	if cs.TokenMisses != 0 {
		t.Errorf("warm run re-tokenized %d pages, want 0", cs.TokenMisses)
	}
	wantLookups := int64(len(in.ListPages) + len(in.DetailPages))
	if cs.TokenHits != wantLookups {
		t.Errorf("warm run TokenHits = %d, want %d", cs.TokenHits, wantLookups)
	}
	if cs.TemplateHits != 1 || cs.TemplateMisses != 0 {
		t.Errorf("warm run template = %d/%d hits/misses, want 1/0", cs.TemplateHits, cs.TemplateMisses)
	}
	// Per-tier: the fresh memory tier misses everything; the disk tier
	// serves every lookup (tokens + template) without a single miss.
	mem := tierByName(t, cs, "memory")
	disk := tierByName(t, cs, "disk")
	if disk.Misses != 0 || disk.Hits != wantLookups+1 {
		t.Errorf("disk tier = %d/%d hits/misses, want %d/0", disk.Hits, disk.Misses, wantLookups+1)
	}
	if mem.Hits != 0 || mem.Misses != wantLookups+1 {
		t.Errorf("memory tier = %d/%d hits/misses, want 0/%d", mem.Hits, mem.Misses, wantLookups+1)
	}
}

// TestEngineResumeSkipsFinishedTasks is the checkpoint contract: a
// second engine over the same store with Resume answers every already-
// journaled task from the journal — no pipeline stage runs — with
// results deeply equal to the first run's.
func TestEngineResumeSkipsFinishedTasks(t *testing.T) {
	dir := t.TempDir()
	inputs := corpusInputs(t)[:6]

	first, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res1 := first.RunTasks(context.Background(), tasksFor(inputs))

	second, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 2, CacheDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	res2 := second.RunTasks(context.Background(), tasksFor(inputs))
	for i := range res2 {
		if res1[i].Err != nil || res2[i].Err != nil {
			t.Fatalf("task %d: errs %v / %v", i, res1[i].Err, res2[i].Err)
		}
		if !res2[i].Stats.ResultCacheHit {
			t.Errorf("task %d: not answered from the journal", i)
		}
		if !reflect.DeepEqual(res2[i].Seg, res1[i].Seg) {
			t.Errorf("task %d: resumed segmentation differs", i)
		}
	}
	cs := second.CacheStats()
	if cs.ResultHits != int64(len(inputs)) || cs.ResultMisses != 0 {
		t.Errorf("resume journal = %d/%d hits/misses, want %d/0", cs.ResultHits, cs.ResultMisses, len(inputs))
	}
	if cs.TokenHits+cs.TokenMisses != 0 {
		t.Errorf("resumed batch touched the token cache %d times, want 0", cs.TokenHits+cs.TokenMisses)
	}
}

// TestEngineResumeProbabilistic pins the documented PHMM exclusion:
// resumed probabilistic results drop the diagnostic model but match
// every output-bearing field.
func TestEngineResumeProbabilistic(t *testing.T) {
	dir := t.TempDir()
	in := siteInput(t, "allegheny", 0)
	opts := core.DefaultOptions(core.Probabilistic)

	first, err := engine.New(engine.Config{Options: opts, Concurrency: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r1 := first.Segment(context.Background(), in)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if r1.Seg.PHMM == nil {
		t.Fatal("fresh probabilistic run carries no PHMM diagnostic")
	}

	second, err := engine.New(engine.Config{Options: opts, Concurrency: 1, CacheDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	r2 := second.Segment(context.Background(), in)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.Stats.ResultCacheHit {
		t.Fatal("second run did not resume from the journal")
	}
	if r2.Seg.PHMM != nil {
		t.Error("resumed result carries a PHMM diagnostic (not journaled)")
	}
	want := *r1.Seg
	want.PHMM = nil
	if !reflect.DeepEqual(*r2.Seg, want) {
		t.Error("resumed segmentation differs beyond the PHMM field")
	}
}

// TestEngineResumeReplaysTypedErrors verifies that deterministic
// diagnostic failures are journaled and replayed with the identical
// message and sentinel, while the journal never captures cancellations.
func TestEngineResumeReplaysTypedErrors(t *testing.T) {
	dir := t.TempDir()
	in := siteInput(t, "allegheny", 0)
	in.DetailPages = nil // no detail pages: typed diagnostic error

	first, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r1 := first.Segment(context.Background(), in)
	if !errors.Is(r1.Err, core.ErrNoDetailPages) {
		t.Fatalf("err = %v, want ErrNoDetailPages", r1.Err)
	}

	second, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1, CacheDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	r2 := second.Segment(context.Background(), in)
	if !r2.Stats.ResultCacheHit {
		t.Fatal("typed error was not journaled")
	}
	if !errors.Is(r2.Err, core.ErrNoDetailPages) {
		t.Errorf("resumed err = %v, does not unwrap to the sentinel", r2.Err)
	}
	if r2.Err.Error() != r1.Err.Error() {
		t.Errorf("resumed message %q != original %q", r2.Err, r1.Err)
	}

	// A cancelled task must not be journaled: resuming after a
	// cancellation recomputes.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	good := siteInput(t, "butler", 0)
	if r := second.Segment(ctx, good); !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("cancelled task err = %v", r.Err)
	}
	if r := second.Segment(context.Background(), good); r.Err != nil {
		t.Fatalf("recompute after cancellation: %v", r.Err)
	} else if r.Stats.ResultCacheHit {
		t.Error("cancellation was journaled as a result")
	}
}

// TestEngineResumeKeysOnOptions verifies the journal key covers the
// effective options: the same input under different options is a
// journal miss, never a cross-method replay.
func TestEngineResumeKeysOnOptions(t *testing.T) {
	dir := t.TempDir()
	in := siteInput(t, "allegheny", 0)

	first, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if r := first.Segment(context.Background(), in); r.Err != nil {
		t.Fatal(r.Err)
	}

	second, err := engine.New(engine.Config{Options: core.DefaultOptions(core.Probabilistic), Concurrency: 1, CacheDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	r := second.Segment(context.Background(), in)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Stats.ResultCacheHit {
		t.Error("journal replayed a result across differing options")
	}
	if r.Seg.Method != core.Probabilistic {
		t.Errorf("method = %v, want Probabilistic", r.Seg.Method)
	}
}

// TestEngineCacheStatsConcurrentAccuracy is the counter-accuracy
// contract under contention: with many workers racing over shared
// pages, the aggregate counters equal the sum of per-task counters,
// and every engine-level lookup maps to exactly one store-tier lookup
// (hits + misses sum to lookups). Run under -race in CI.
func TestEngineCacheStatsConcurrentAccuracy(t *testing.T) {
	inputs := corpusInputs(t)
	eng, err := engine.New(engine.Config{Options: core.DefaultOptions(core.CSP), Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Three interleaved copies of the corpus maximize cross-task
	// sharing of sites and detail pages.
	var tasks []engine.Task
	for round := 0; round < 3; round++ {
		tasks = append(tasks, tasksFor(inputs)...)
	}
	results := eng.RunTasks(context.Background(), tasks)
	var taskHits, taskMisses int64
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("task %d: %v", r.Index, r.Err)
		}
		taskHits += int64(r.Stats.TokenCacheHits)
		taskMisses += int64(r.Stats.TokenCacheMisses)
	}
	cs := eng.CacheStats()
	if cs.TokenHits != taskHits || cs.TokenMisses != taskMisses {
		t.Errorf("aggregate token counters %d/%d != per-task sums %d/%d",
			cs.TokenHits, cs.TokenMisses, taskHits, taskMisses)
	}
	if cs.TemplateHits+cs.TemplateMisses != int64(len(tasks)) {
		t.Errorf("template lookups = %d, want one per task (%d)",
			cs.TemplateHits+cs.TemplateMisses, len(tasks))
	}
	// Every engine-level lookup performs exactly one store Get, so the
	// single memory tier's hits+misses must equal the engine totals.
	lookups := cs.TokenHits + cs.TokenMisses + cs.TemplateHits + cs.TemplateMisses +
		cs.ResultHits + cs.ResultMisses
	mem := tierByName(t, cs, "memory")
	if mem.Hits+mem.Misses != lookups {
		t.Errorf("memory tier saw %d lookups, engine counted %d", mem.Hits+mem.Misses, lookups)
	}
}
