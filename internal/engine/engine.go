// Package engine implements a reusable, concurrent batch-segmentation
// engine over the core pipeline: tasks stream through a bounded worker
// pool, per-site artifacts (tokenized sample list pages and the induced
// page template) are cached by list-page content hash so repeated tasks
// from one site skip re-induction, and every task returns structured
// per-stage instrumentation alongside its segmentation or typed error.
//
// The engine exists for the paper's natural unit of work — a corpus of
// list pages across many sites (§6 runs 24 pages over 12 sites) — where
// serial one-shot Segment calls leave both cores and shared per-site
// work on the table. Results are deterministic: a task computes exactly
// what a serial core.Segment call would, regardless of worker count or
// scheduling, because the cached artifacts are immutable and every
// solver seed is task-local.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tableseg/internal/clock"
	"tableseg/internal/core"
	"tableseg/internal/stage"
	"tableseg/internal/token"
)

// ErrClosed is returned by Submit once Close has been called: the
// engine no longer admits work, though results of tasks admitted
// earlier still arrive on their channels.
var ErrClosed = errors.New("engine: closed")

// Config configures an Engine.
type Config struct {
	// Options is the pipeline configuration applied to every task that
	// does not carry its own override. The zero value selects the CSP
	// method with defaults; most callers want core.DefaultOptions.
	Options core.Options
	// Concurrency bounds the worker pool. Zero selects
	// runtime.GOMAXPROCS(0); negative values are rejected by Validate.
	Concurrency int
	// DisableCache turns off the per-site template/token cache
	// (each task then pays full tokenization and induction; useful for
	// benchmarking the cache's contribution).
	DisableCache bool
	// Observer, when non-nil, receives a callback at every pipeline
	// stage boundary of every task, in addition to the per-task Stats
	// collection — the seam a server uses to feed latency histograms
	// without forking the engine. Tasks run concurrently, so the
	// observer must be safe for concurrent use; callbacks carry only
	// diagnostics and never influence segmentation output.
	Observer stage.Observer
}

// Validate rejects nonsensical engine configurations with typed errors
// (core.ErrBadOptions), including the wrapped pipeline options.
func (c Config) Validate() error {
	if c.Concurrency < 0 {
		return fmt.Errorf("%w: negative Concurrency %d", core.ErrBadOptions, c.Concurrency)
	}
	return c.Options.Validate()
}

// Task is one unit of batch work: a segmentation input plus optional
// per-task metadata.
type Task struct {
	// ID identifies the task in its Result (optional; results also
	// carry the submission index).
	ID string
	// Input is the segmentation task.
	Input core.Input
	// Options, when non-nil, overrides the engine's configured options
	// for this task only. The per-site cache is shared across options —
	// tokenization and template induction are method-independent.
	Options *core.Options
}

// TaskStats is the engine's observability record for one task: the
// pipeline's per-stage wall times and solver counters plus the task's
// total wall time and cache outcomes.
type TaskStats struct {
	core.Stats
	// Wall is the task's end-to-end wall time inside the worker.
	Wall time.Duration
	// TemplateCacheHit is true when the task reused a previously
	// prepared site (tokenized list pages + induced template) instead
	// of computing its own.
	TemplateCacheHit bool
	// TokenCacheHits and TokenCacheMisses count the task's lookups in
	// the engine's content-addressed token cache (0/0 when caching is
	// disabled). Detail pages shared across tasks — the same input
	// segmented under several methods, or one site's pages reappearing
	// as targets — hit instead of re-tokenizing.
	TokenCacheHits, TokenCacheMisses int
}

// Result is the outcome of one task.
type Result struct {
	// Index is the task's submission order (0-based), so streamed
	// results can be correlated even when they complete out of order.
	Index int
	// ID echoes Task.ID.
	ID string
	// Seg is the segmentation; it may be non-nil even when Err is set
	// (diagnostic failures such as core.ErrNoDetailEvidence attach the
	// partial segmentation).
	Seg *core.Segmentation
	// Err is nil on success, a typed pipeline error, or ctx.Err() when
	// the batch was cancelled before or during the task.
	Err error
	// Stats carries the task's instrumentation.
	Stats TaskStats
}

// Engine is a reusable concurrent batch segmenter. It is safe for
// concurrent use; the per-site cache is shared across batches for the
// engine's lifetime.
type Engine struct {
	opts     core.Options
	workers  int
	caching  bool
	observer stage.Observer

	mu     sync.Mutex
	sites  map[string]*siteEntry
	tokens *tokenCache

	// Submission lifecycle: Submit admits work while closed is false,
	// each admitted submission holds slots (capacity = workers) while
	// it runs, and Close flips closed then joins inFlight.
	lifeMu   sync.Mutex
	closed   bool
	inFlight sync.WaitGroup
	slots    chan struct{}

	cacheStats struct {
		tokenHits, tokenMisses       atomic.Int64
		templateHits, templateMisses atomic.Int64
	}
}

// siteEntry guards one site's prep so concurrent first tasks for the
// same site compute it exactly once.
type siteEntry struct {
	once sync.Once
	prep *core.SitePrep
}

// tokenCache is the engine's content-addressed tokenization cache:
// byte-identical pages (keyed by HTML hash, not name) tokenize once for
// the engine's lifetime. Entries are once-guarded so concurrent first
// lookups compute exactly once, and the cached streams are shared and
// therefore treated as immutable by every consumer.
type tokenCache struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*tokenEntry
}

type tokenEntry struct {
	once sync.Once
	toks []token.Token
}

// lookup returns the page's token stream and whether the entry already
// existed (a hit). On a miss the calling goroutine tokenizes; a
// concurrent hit on a fresh entry blocks until that work finishes.
func (c *tokenCache) lookup(p core.Page) ([]token.Token, bool) {
	key := sha256.Sum256([]byte(p.HTML))
	c.mu.Lock()
	ent, hit := c.entries[key]
	if !hit {
		ent = &tokenEntry{}
		c.entries[key] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() { ent.toks = token.Tokenize(p.HTML) })
	return ent.toks, hit
}

// cacheView is one task's window onto the engine's token cache: it
// implements stage.TokenCache and counts the task's hits and misses
// (the cache itself is engine-global and unaware of tasks).
type cacheView struct {
	cache        *tokenCache
	hits, misses int
}

// Tokens implements stage.TokenCache.
func (v *cacheView) Tokens(p core.Page) []token.Token {
	toks, hit := v.cache.lookup(p)
	if hit {
		v.hits++
	} else {
		v.misses++
	}
	return toks
}

// CacheStats is a snapshot of the engine's artifact-cache counters,
// accumulated across every task since the engine was created.
type CacheStats struct {
	// TokenHits and TokenMisses count content-addressed tokenization
	// lookups (list and detail pages).
	TokenHits, TokenMisses int64
	// TemplateHits and TemplateMisses count per-site prep lookups
	// (tokenized sample lists + induced template).
	TemplateHits, TemplateMisses int64
}

// CacheStats returns the engine's aggregate cache counters.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{
		TokenHits:      e.cacheStats.tokenHits.Load(),
		TokenMisses:    e.cacheStats.tokenMisses.Load(),
		TemplateHits:   e.cacheStats.templateHits.Load(),
		TemplateMisses: e.cacheStats.templateMisses.Load(),
	}
}

// New creates an Engine after validating the configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Concurrency
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		opts:     cfg.Options,
		workers:  workers,
		caching:  !cfg.DisableCache,
		observer: cfg.Observer,
		sites:    make(map[string]*siteEntry),
		tokens:   &tokenCache{entries: make(map[[sha256.Size]byte]*tokenEntry)},
		slots:    make(chan struct{}, workers),
	}, nil
}

// Concurrency returns the engine's worker count.
func (e *Engine) Concurrency() int { return e.workers }

// CachedSites returns the number of distinct sites currently prepared
// in the cache.
func (e *Engine) CachedSites() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sites)
}

// siteKey hashes the list pages' contents (not their names): two tasks
// share a prep exactly when their sample list pages are byte-identical
// in order.
func siteKey(lists []core.Page) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(lists)))
	h.Write(n[:])
	for _, p := range lists {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p.HTML)))
		h.Write(n[:])
		h.Write([]byte(p.HTML))
	}
	return string(h.Sum(nil))
}

// InputKey returns the hex content hash of a whole segmentation input
// — sample list pages in order, the target index, and the detail pages
// in order. Two inputs share a key exactly when the engine would
// compute byte-identical segmentations for them under equal options,
// which makes the key the natural unit for request coalescing in a
// server: concurrent identical submissions can share one computation.
func InputKey(in core.Input) string {
	h := sha256.New()
	var n [8]byte
	writeBlock := func(pages []core.Page) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(pages)))
		h.Write(n[:])
		for _, p := range pages {
			binary.LittleEndian.PutUint64(n[:], uint64(len(p.HTML)))
			h.Write(n[:])
			h.Write([]byte(p.HTML))
		}
	}
	writeBlock(in.ListPages)
	binary.LittleEndian.PutUint64(n[:], uint64(in.Target))
	h.Write(n[:])
	writeBlock(in.DetailPages)
	return hex.EncodeToString(h.Sum(nil))
}

// prepFor returns the site prep for a task's list pages, from cache
// when possible, and reports whether the prep was reused. The view
// (nil when caching is off) routes the prep's tokenization through the
// token cache, so a site's list pages also serve later detail-page
// lookups.
func (e *Engine) prepFor(lists []core.Page, view *cacheView) (*core.SitePrep, bool) {
	if !e.caching {
		return core.PrepareSite(lists, nil), false
	}
	key := siteKey(lists)
	e.mu.Lock()
	ent, hit := e.sites[key]
	if !hit {
		ent = &siteEntry{}
		e.sites[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.prep = core.PrepareSite(lists, view) })
	if hit {
		e.cacheStats.templateHits.Add(1)
	} else {
		e.cacheStats.templateMisses.Add(1)
	}
	return ent.prep, hit
}

// runTask executes one task end to end on the calling worker.
func (e *Engine) runTask(ctx context.Context, t Task, idx int) Result {
	res := Result{Index: idx, ID: t.ID}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	start := clock.Now()
	opts := e.opts
	if t.Options != nil {
		opts = *t.Options
	}
	env := core.Env{Stats: &res.Stats.Stats, Observer: e.observer}
	var view *cacheView
	if e.caching {
		view = &cacheView{cache: e.tokens}
		env.Tokens = view
	}
	if len(t.Input.ListPages) > 0 {
		// Concurrent tasks for the same site share one template
		// induction through a Once; the losers wait out the winner's
		// bounded induction rather than redo it under cancellation.
		//tableseglint:ignore ctxflow template induction is deduplicated via Once and bounded; cancellation applies to the segmentation that follows
		env.Prep, res.Stats.TemplateCacheHit = e.prepFor(t.Input.ListPages, view)
	}
	res.Seg, res.Err = core.SegmentEnv(ctx, t.Input, opts, env)
	if view != nil {
		res.Stats.TokenCacheHits = view.hits
		res.Stats.TokenCacheMisses = view.misses
		e.cacheStats.tokenHits.Add(int64(view.hits))
		e.cacheStats.tokenMisses.Add(int64(view.misses))
	}
	res.Stats.Wall = clock.Since(start)
	return res
}

// Stream consumes tasks until the channel closes, fanning them out
// over the worker pool, and emits one Result per task on the returned
// channel (closed once every task has been reported). Results arrive
// in completion order — the stream is order-independent; use
// Result.Index or ID to correlate — and the output buffer is bounded
// by the worker count, so a slow consumer backpressures the pool
// instead of accumulating results. On context cancellation in-flight
// solves abort at their next restart/iteration boundary and every
// remaining task is reported with Err = ctx.Err(), so the result
// stream always accounts for every submitted task. The caller must
// drain the returned channel.
func (e *Engine) Stream(ctx context.Context, tasks <-chan Task) <-chan Result {
	type indexed struct {
		t   Task
		idx int
	}
	feed := make(chan indexed, e.workers)
	out := make(chan Result, e.workers)
	go func() {
		defer close(feed)
		idx := 0
		for t := range tasks {
			select {
			case feed <- indexed{t, idx}:
			case <-ctx.Done():
				// The workers may all be parked mid-solve; report the
				// unfed task directly so the stream still accounts for
				// every submitted task. Sending here is safe: these
				// sends happen before close(feed), which happens before
				// the workers exit, which happens before close(out).
				out <- Result{Index: idx, ID: t.ID, Err: ctx.Err()}
			}
			idx++
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range feed {
				out <- e.runTask(ctx, it.t, it.idx)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run is a deprecated alias for Stream, kept for callers of the
// original batch API.
//
// Deprecated: use Stream.
func (e *Engine) Run(ctx context.Context, tasks <-chan Task) <-chan Result {
	return e.Stream(ctx, tasks) //tableseglint:ignore chancontract deprecated delegating alias; Stream owns and closes the stream
}

// Submit admits one task into the engine's long-lived worker-slot pool
// and returns a 1-buffered channel that receives the task's Result and
// is then closed, so a caller may receive or range. Unlike Stream —
// which owns a whole batch — Submit is the daemon-facing surface: many
// independent callers share the pool, each bounded by the same
// concurrency limit, and per-call contexts cancel waiting or running
// work individually (a task cancelled while waiting for a slot reports
// Err = ctx.Err()). After Close, Submit returns ErrClosed.
func (e *Engine) Submit(ctx context.Context, t Task) (<-chan Result, error) {
	e.lifeMu.Lock()
	if e.closed {
		e.lifeMu.Unlock()
		return nil, ErrClosed
	}
	e.inFlight.Add(1)
	e.lifeMu.Unlock()
	out := make(chan Result, 1)
	go func() {
		defer e.inFlight.Done()
		defer close(out)
		select {
		case e.slots <- struct{}{}:
		case <-ctx.Done():
			out <- Result{ID: t.ID, Err: ctx.Err()}
			return
		}
		out <- e.runTask(ctx, t, 0)
		<-e.slots
	}()
	return out, nil
}

// Close stops admitting Submit work and waits for every admitted
// submission to deliver its result. It is idempotent and does not
// affect Stream/RunTasks batches, whose lifetimes are bounded by their
// own task channels and contexts. The caches stay valid after Close.
func (e *Engine) Close() error {
	e.lifeMu.Lock()
	e.closed = true
	e.lifeMu.Unlock()
	e.inFlight.Wait()
	return nil
}

// RunTasks fans a fixed batch out over the pool and returns the results
// in submission order (results[i] corresponds to tasks[i]).
func (e *Engine) RunTasks(ctx context.Context, tasks []Task) []Result {
	in := make(chan Task, len(tasks))
	for _, t := range tasks {
		in <- t
	}
	close(in)
	results := make([]Result, len(tasks))
	for r := range e.Stream(ctx, in) {
		results[r.Index] = r
	}
	return results
}

// SegmentAll segments a batch of inputs under the engine's configured
// options, returning results in input order.
func (e *Engine) SegmentAll(ctx context.Context, inputs []core.Input) []Result {
	tasks := make([]Task, len(inputs))
	for i := range inputs {
		tasks[i] = Task{Input: inputs[i]}
	}
	return e.RunTasks(ctx, tasks)
}

// Segment runs a single input through the engine (worker pool and
// cache included) and returns its result.
func (e *Engine) Segment(ctx context.Context, in core.Input) Result {
	return e.RunTasks(ctx, []Task{{Input: in}})[0]
}
