// Package engine implements a reusable, concurrent batch-segmentation
// engine over the core pipeline: tasks stream through a bounded worker
// pool, per-site artifacts (tokenized pages, induced page templates,
// and completed task results) live in a content-addressed artifact
// store, and every task returns structured per-stage instrumentation
// alongside its segmentation or typed error.
//
// The engine exists for the paper's natural unit of work — a corpus of
// list pages across many sites (§6 runs 24 pages over 12 sites) — where
// serial one-shot Segment calls leave both cores and shared per-site
// work on the table. Results are deterministic: a task computes exactly
// what a serial core.Segment call would, regardless of worker count or
// scheduling, because the cached artifacts are immutable and every
// solver seed is task-local.
//
// Artifacts are serialized (internal/stage codec) into a tiered store
// (internal/artifact): a bounded in-memory LRU, optionally fronting a
// disk tier that persists across restarts and can be shared between
// processes pointed at one cache directory. Completed task results are
// journaled to the same store, so a batch interrupted mid-run and
// restarted with Resume skips finished tasks and produces byte-identical
// output to an uninterrupted run.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tableseg/internal/artifact"
	"tableseg/internal/clock"
	"tableseg/internal/core"
	"tableseg/internal/stage"
	"tableseg/internal/token"
)

// ErrClosed is returned by Submit once Close has been called: the
// engine no longer admits work, though results of tasks admitted
// earlier still arrive on their channels.
var ErrClosed = errors.New("engine: closed")

// Config configures an Engine.
type Config struct {
	// Options is the pipeline configuration applied to every task that
	// does not carry its own override. The zero value selects the CSP
	// method with defaults; most callers want core.DefaultOptions.
	Options core.Options
	// Concurrency bounds the worker pool. Zero selects
	// runtime.GOMAXPROCS(0); negative values are rejected by Validate.
	Concurrency int
	// DisableCache turns off the artifact store entirely (each task
	// then pays full tokenization and induction, and nothing is
	// journaled; useful for benchmarking the cache's contribution).
	DisableCache bool
	// Observer, when non-nil, receives a callback at every pipeline
	// stage boundary of every task, in addition to the per-task Stats
	// collection — the seam a server uses to feed latency histograms
	// without forking the engine. Tasks run concurrently, so the
	// observer must be safe for concurrent use; callbacks carry only
	// diagnostics and never influence segmentation output.
	Observer stage.Observer
	// Store, when non-nil, replaces the engine-built artifact store
	// (ignored when DisableCache is set). Most callers leave it nil and
	// configure the built-in tiers via CacheDir and the budgets below.
	Store artifact.Store
	// CacheDir, when non-empty, adds a disk tier rooted there behind
	// the in-memory LRU. The directory persists artifacts across
	// restarts — it is what makes a killed batch resumable — and may be
	// shared by several processes.
	CacheDir string
	// CacheMemoryBytes bounds the in-memory tier. Zero selects
	// artifact.DefaultMemoryBudget; negatives are rejected.
	CacheMemoryBytes int64
	// CacheDiskBytes caps the disk tier (with CacheDir). Zero selects
	// artifact.DefaultDiskBudget; negatives are rejected.
	CacheDiskBytes int64
	// Resume makes every task consult the result journal before
	// computing: a task whose (input content, options) pair already has
	// a journaled result returns it without recomputation. Requires
	// caching; pair it with CacheDir to survive process death.
	Resume bool
}

// Validate rejects nonsensical engine configurations with typed errors
// (core.ErrBadOptions), including the wrapped pipeline options.
func (c Config) Validate() error {
	if c.Concurrency < 0 {
		return fmt.Errorf("%w: negative Concurrency %d", core.ErrBadOptions, c.Concurrency)
	}
	if c.CacheMemoryBytes < 0 {
		return fmt.Errorf("%w: negative CacheMemoryBytes %d", core.ErrBadOptions, c.CacheMemoryBytes)
	}
	if c.CacheDiskBytes < 0 {
		return fmt.Errorf("%w: negative CacheDiskBytes %d", core.ErrBadOptions, c.CacheDiskBytes)
	}
	if c.Resume && c.DisableCache {
		return fmt.Errorf("%w: Resume requires caching (DisableCache is set)", core.ErrBadOptions)
	}
	return c.Options.Validate()
}

// Task is one unit of batch work: a segmentation input plus optional
// per-task metadata.
type Task struct {
	// ID identifies the task in its Result (optional; results also
	// carry the submission index).
	ID string
	// Input is the segmentation task.
	Input core.Input
	// Options, when non-nil, overrides the engine's configured options
	// for this task only. The per-site cache is shared across options —
	// tokenization and template induction are method-independent — while
	// the result journal keys on the (input, options) pair.
	Options *core.Options
}

// TaskStats is the engine's observability record for one task: the
// pipeline's per-stage wall times and solver counters plus the task's
// total wall time and cache outcomes.
type TaskStats struct {
	core.Stats
	// Wall is the task's end-to-end wall time inside the worker.
	Wall time.Duration
	// TemplateCacheHit is true when the task reused a previously
	// prepared site (tokenized list pages + induced template) instead
	// of computing its own.
	TemplateCacheHit bool
	// TokenCacheHits and TokenCacheMisses count the task's lookups in
	// the engine's content-addressed token cache (0/0 when caching is
	// disabled). Detail pages shared across tasks — the same input
	// segmented under several methods, or one site's pages reappearing
	// as targets — hit instead of re-tokenizing.
	TokenCacheHits, TokenCacheMisses int
	// ResultCacheHit is true when the whole task was answered from the
	// result journal (Resume): no pipeline stage ran.
	ResultCacheHit bool
}

// Result is the outcome of one task.
type Result struct {
	// Index is the task's submission order (0-based), so streamed
	// results can be correlated even when they complete out of order.
	Index int
	// ID echoes Task.ID.
	ID string
	// Seg is the segmentation; it may be non-nil even when Err is set
	// (diagnostic failures such as core.ErrNoDetailEvidence attach the
	// partial segmentation).
	Seg *core.Segmentation
	// Err is nil on success, a typed pipeline error, or ctx.Err() when
	// the batch was cancelled before or during the task.
	Err error
	// Stats carries the task's instrumentation.
	Stats TaskStats
}

// Engine is a reusable concurrent batch segmenter. It is safe for
// concurrent use; the artifact store is shared across batches for the
// engine's lifetime (and, with a disk tier, across engine lifetimes).
type Engine struct {
	opts     core.Options
	workers  int
	caching  bool
	resume   bool
	observer stage.Observer
	// store holds serialized artifacts; nil exactly when caching is
	// disabled.
	store artifact.Store

	// mu guards sitesSeen: the distinct site keys prepared so far.
	mu        sync.Mutex
	sitesSeen map[artifact.Key]struct{}

	// flightMu guards flights: in-process deduplication of concurrent
	// artifact computation (the store itself deduplicates storage, not
	// work).
	flightMu sync.Mutex
	flights  map[artifact.Key]*flight

	// Submission lifecycle: Submit admits work while closed is false,
	// each admitted submission holds slots (capacity = workers) while
	// it runs, and Close flips closed then joins inFlight.
	lifeMu   sync.Mutex
	closed   bool
	inFlight sync.WaitGroup
	slots    chan struct{}

	cacheStats struct {
		tokenHits, tokenMisses       atomic.Int64
		templateHits, templateMisses atomic.Int64
		resultHits, resultMisses     atomic.Int64
	}
}

// flight is one in-progress artifact computation; concurrent callers
// for the same key wait on done and share val.
type flight struct {
	done chan struct{}
	val  any
}

// doOnce computes the artifact for k exactly once across concurrent
// callers: the first caller runs compute, the rest block until it
// finishes and share its value. joined reports whether the value came
// from another goroutine's in-flight computation (a cache hit from the
// caller's perspective). Entries are dropped once done, so repeated
// misses (e.g. after eviction) recompute rather than pinning every
// artifact forever.
func (e *Engine) doOnce(k artifact.Key, compute func() any) (val any, joined bool) {
	e.flightMu.Lock()
	if f, ok := e.flights[k]; ok {
		e.flightMu.Unlock()
		//tableseglint:ignore ctxflow the wait is bounded by one artifact computation (a page tokenize or site induction), deliberately shared across tasks
		<-f.done
		return f.val, true
	}
	f := &flight{done: make(chan struct{})}
	e.flights[k] = f
	e.flightMu.Unlock()
	f.val = compute()
	close(f.done)
	e.flightMu.Lock()
	delete(e.flights, k)
	e.flightMu.Unlock()
	return f.val, false
}

// cacheView is one task's window onto the engine's artifact store: it
// implements stage.TokenCache and counts the task's hits and misses
// (the store is engine-global and unaware of tasks). Not safe for
// concurrent use; each task owns one.
type cacheView struct {
	eng          *Engine
	hits, misses int
}

// Tokens implements stage.TokenCache: serve the page's token stream
// from the store, or tokenize once (deduplicated across concurrent
// tasks) and store the encoded stream.
func (v *cacheView) Tokens(p core.Page) []token.Token {
	k := tokenKey(p.HTML)
	if data, ok := v.eng.store.Get(k); ok {
		if toks, err := stage.DecodeTokens(data); err == nil {
			v.hits++
			return toks
		}
	}
	val, joined := v.eng.doOnce(k, func() any {
		toks := token.Tokenize(p.HTML)
		v.eng.store.Put(k, stage.EncodeTokens(toks))
		return toks
	})
	if joined {
		v.hits++
	} else {
		v.misses++
	}
	return val.([]token.Token)
}

// CacheStats is a snapshot of the engine's artifact-cache counters,
// accumulated across every task since the engine was created.
type CacheStats struct {
	// TokenHits and TokenMisses count content-addressed tokenization
	// lookups (list and detail pages).
	TokenHits, TokenMisses int64
	// TemplateHits and TemplateMisses count per-site prep lookups
	// (tokenized sample lists + induced template).
	TemplateHits, TemplateMisses int64
	// ResultHits and ResultMisses count result-journal lookups on
	// resumed batches (both zero unless Resume is configured).
	ResultHits, ResultMisses int64
	// Tiers snapshots the store's per-tier counters (hits, misses,
	// puts, evictions, absorbed errors, resident entries/bytes), fast
	// tier first. Nil when caching is disabled.
	Tiers []artifact.Stats
}

// CacheStats returns the engine's aggregate cache counters.
func (e *Engine) CacheStats() CacheStats {
	cs := CacheStats{
		TokenHits:      e.cacheStats.tokenHits.Load(),
		TokenMisses:    e.cacheStats.tokenMisses.Load(),
		TemplateHits:   e.cacheStats.templateHits.Load(),
		TemplateMisses: e.cacheStats.templateMisses.Load(),
		ResultHits:     e.cacheStats.resultHits.Load(),
		ResultMisses:   e.cacheStats.resultMisses.Load(),
	}
	if e.store != nil {
		cs.Tiers = e.store.Stats()
	}
	return cs
}

// New creates an Engine after validating the configuration. With
// caching enabled the engine builds its store from the config — a
// bounded in-memory LRU, fronting a disk tier when CacheDir is set —
// unless cfg.Store supplies one. Opening the disk tier can fail (e.g.
// an unwritable directory); that error is returned rather than
// silently degrading to memory-only.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Concurrency
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		opts:      cfg.Options,
		workers:   workers,
		caching:   !cfg.DisableCache,
		resume:    cfg.Resume,
		observer:  cfg.Observer,
		sitesSeen: make(map[artifact.Key]struct{}),
		flights:   make(map[artifact.Key]*flight),
		slots:     make(chan struct{}, workers),
	}
	if e.caching {
		e.store = cfg.Store
		if e.store == nil {
			mem := artifact.NewMemory(cfg.CacheMemoryBytes)
			if cfg.CacheDir != "" {
				disk, err := artifact.OpenDisk(cfg.CacheDir, cfg.CacheDiskBytes)
				if err != nil {
					return nil, err
				}
				e.store = artifact.NewTiered(mem, disk)
			} else {
				e.store = mem
			}
		}
	}
	return e, nil
}

// Concurrency returns the engine's worker count.
func (e *Engine) Concurrency() int { return e.workers }

// CachedSites returns the number of distinct sites (by list-page
// content hash) the engine has prepared since creation.
func (e *Engine) CachedSites() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sitesSeen)
}

// tokenKey addresses a page's serialized token stream by its HTML
// content hash.
func tokenKey(html string) artifact.Key {
	return artifact.Key{
		Kind:    artifact.KindTokens,
		Version: stage.CodecVersion,
		Hash:    sha256.Sum256([]byte(html)),
	}
}

// templateKey addresses a site's induced template by the content hash
// of its ordered sample list pages (not their names): two tasks share
// a template exactly when their sample list pages are byte-identical
// in order.
func templateKey(lists []core.Page) artifact.Key {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(lists)))
	h.Write(n[:])
	for _, p := range lists {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p.HTML)))
		h.Write(n[:])
		h.Write([]byte(p.HTML))
	}
	k := artifact.Key{Kind: artifact.KindTemplate, Version: stage.CodecVersion}
	h.Sum(k.Hash[:0])
	return k
}

// InputKey returns the hex content hash of a whole segmentation input
// — sample list pages in order, the target index, and the detail pages
// in order. Two inputs share a key exactly when the engine would
// compute byte-identical segmentations for them under equal options,
// which makes the key the natural unit for request coalescing in a
// server — concurrent identical submissions can share one computation —
// and, combined with an options fingerprint, for the result journal.
func InputKey(in core.Input) string {
	h := sha256.New()
	var n [8]byte
	writeBlock := func(pages []core.Page) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(pages)))
		h.Write(n[:])
		for _, p := range pages {
			binary.LittleEndian.PutUint64(n[:], uint64(len(p.HTML)))
			h.Write(n[:])
			h.Write([]byte(p.HTML))
		}
	}
	writeBlock(in.ListPages)
	binary.LittleEndian.PutUint64(n[:], uint64(in.Target))
	h.Write(n[:])
	writeBlock(in.DetailPages)
	return hex.EncodeToString(h.Sum(nil))
}

// prepFor returns the site prep for a task's list pages — decoded from
// the store when the template was cached (possibly by an earlier
// process), computed and stored otherwise — and reports whether the
// prep was reused. The view (nil only when caching is off) routes all
// tokenization through the artifact store, so a site's list pages also
// serve later detail-page lookups.
func (e *Engine) prepFor(lists []core.Page, view *cacheView) (*core.SitePrep, bool) {
	if !e.caching {
		return core.PrepareSite(lists, nil), false
	}
	k := templateKey(lists)
	e.mu.Lock()
	e.sitesSeen[k] = struct{}{}
	e.mu.Unlock()
	if data, ok := e.store.Get(k); ok {
		if tpl, err := stage.DecodeTemplate(data); err == nil {
			prep := &core.SitePrep{ListToks: make([][]token.Token, len(lists)), Tpl: tpl.Tpl}
			for i := range lists {
				prep.ListToks[i] = view.Tokens(lists[i])
			}
			e.cacheStats.templateHits.Add(1)
			return prep, true
		}
	}
	val, joined := e.doOnce(k, func() any {
		prep := core.PrepareSite(lists, view)
		e.store.Put(k, stage.EncodeTemplate(stage.Template{Tpl: prep.Tpl}))
		return prep
	})
	if joined {
		e.cacheStats.templateHits.Add(1)
	} else {
		e.cacheStats.templateMisses.Add(1)
	}
	return val.(*core.SitePrep), joined
}

// runTask executes one task end to end on the calling worker.
func (e *Engine) runTask(ctx context.Context, t Task, idx int) Result {
	res := Result{Index: idx, ID: t.ID}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	start := clock.Now()
	opts := e.opts
	if t.Options != nil {
		opts = *t.Options
	}
	var rkey artifact.Key
	if e.caching {
		rkey = resultKey(t.Input, opts)
		if e.resume {
			if cached, ok := e.lookupResult(rkey); ok {
				cached.Index, cached.ID = idx, t.ID
				cached.Stats.ResultCacheHit = true
				cached.Stats.Wall = clock.Since(start)
				e.cacheStats.resultHits.Add(1)
				return cached
			}
			e.cacheStats.resultMisses.Add(1)
		}
	}
	env := core.Env{Stats: &res.Stats.Stats, Observer: e.observer}
	var view *cacheView
	if e.caching {
		view = &cacheView{eng: e}
		env.Tokens = view
	}
	if len(t.Input.ListPages) > 0 {
		// Concurrent tasks for the same site share one template
		// induction through doOnce; the losers wait out the winner's
		// bounded induction rather than redo it under cancellation.
		//tableseglint:ignore ctxflow template induction is deduplicated via doOnce and bounded; cancellation applies to the segmentation that follows
		env.Prep, res.Stats.TemplateCacheHit = e.prepFor(t.Input.ListPages, view)
	}
	res.Seg, res.Err = core.SegmentEnv(ctx, t.Input, opts, env)
	if view != nil {
		res.Stats.TokenCacheHits = view.hits
		res.Stats.TokenCacheMisses = view.misses
		e.cacheStats.tokenHits.Add(int64(view.hits))
		e.cacheStats.tokenMisses.Add(int64(view.misses))
	}
	if e.caching {
		// Journal the completed task — success or typed diagnostic
		// error, never a cancellation — so a later Resume run skips it.
		if payload, ok := encodeResult(res); ok {
			e.store.Put(rkey, payload)
		}
	}
	res.Stats.Wall = clock.Since(start)
	return res
}

// lookupResult fetches and decodes a journaled result. Undecodable
// payloads (foreign versions, corruption that survived the store's own
// checks) are absorbed as misses.
func (e *Engine) lookupResult(k artifact.Key) (Result, bool) {
	data, ok := e.store.Get(k)
	if !ok {
		return Result{}, false
	}
	return decodeResult(data)
}

// Stream consumes tasks until the channel closes, fanning them out
// over the worker pool, and emits one Result per task on the returned
// channel (closed once every task has been reported). Results arrive
// in completion order — the stream is order-independent; use
// Result.Index or ID to correlate — and the output buffer is bounded
// by the worker count, so a slow consumer backpressures the pool
// instead of accumulating results. On context cancellation in-flight
// solves abort at their next restart/iteration boundary and every
// remaining task is reported with Err = ctx.Err(), so the result
// stream always accounts for every submitted task. The caller must
// drain the returned channel.
func (e *Engine) Stream(ctx context.Context, tasks <-chan Task) <-chan Result {
	type indexed struct {
		t   Task
		idx int
	}
	feed := make(chan indexed, e.workers)
	out := make(chan Result, e.workers)
	go func() {
		defer close(feed)
		idx := 0
		for t := range tasks {
			select {
			case feed <- indexed{t, idx}:
			case <-ctx.Done():
				// The workers may all be parked mid-solve; report the
				// unfed task directly so the stream still accounts for
				// every submitted task. Sending here is safe: these
				// sends happen before close(feed), which happens before
				// the workers exit, which happens before close(out).
				out <- Result{Index: idx, ID: t.ID, Err: ctx.Err()}
			}
			idx++
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range feed {
				out <- e.runTask(ctx, it.t, it.idx)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run is a deprecated alias for Stream, kept for callers of the
// original batch API.
//
// Deprecated: use Stream.
func (e *Engine) Run(ctx context.Context, tasks <-chan Task) <-chan Result {
	//tableseglint:ignore deprecated the deprecated alias must delegate to its own replacement
	return e.Stream(ctx, tasks) //tableseglint:ignore chancontract deprecated delegating alias; Stream owns and closes the stream
}

// Submit admits one task into the engine's long-lived worker-slot pool
// and returns a 1-buffered channel that receives the task's Result and
// is then closed, so a caller may receive or range. Unlike Stream —
// which owns a whole batch — Submit is the daemon-facing surface: many
// independent callers share the pool, each bounded by the same
// concurrency limit, and per-call contexts cancel waiting or running
// work individually (a task cancelled while waiting for a slot reports
// Err = ctx.Err()). After Close, Submit returns ErrClosed.
func (e *Engine) Submit(ctx context.Context, t Task) (<-chan Result, error) {
	e.lifeMu.Lock()
	if e.closed {
		e.lifeMu.Unlock()
		return nil, ErrClosed
	}
	e.inFlight.Add(1)
	e.lifeMu.Unlock()
	out := make(chan Result, 1)
	go func() {
		defer e.inFlight.Done()
		defer close(out)
		select {
		case e.slots <- struct{}{}:
		case <-ctx.Done():
			out <- Result{ID: t.ID, Err: ctx.Err()}
			return
		}
		out <- e.runTask(ctx, t, 0)
		<-e.slots
	}()
	return out, nil
}

// Close stops admitting Submit work and waits for every admitted
// submission to deliver its result. It is idempotent and does not
// affect Stream/RunTasks batches, whose lifetimes are bounded by their
// own task channels and contexts. The caches stay valid after Close.
func (e *Engine) Close() error {
	e.lifeMu.Lock()
	e.closed = true
	e.lifeMu.Unlock()
	e.inFlight.Wait()
	return nil
}

// RunTasks fans a fixed batch out over the pool and returns the results
// in submission order (results[i] corresponds to tasks[i]).
func (e *Engine) RunTasks(ctx context.Context, tasks []Task) []Result {
	in := make(chan Task, len(tasks))
	for _, t := range tasks {
		in <- t
	}
	close(in)
	results := make([]Result, len(tasks))
	for r := range e.Stream(ctx, in) {
		results[r.Index] = r
	}
	return results
}

// SegmentAll segments a batch of inputs under the engine's configured
// options, returning results in input order.
func (e *Engine) SegmentAll(ctx context.Context, inputs []core.Input) []Result {
	tasks := make([]Task, len(inputs))
	for i := range inputs {
		tasks[i] = Task{Input: inputs[i]}
	}
	return e.RunTasks(ctx, tasks)
}

// Segment runs a single input through the engine (worker pool and
// cache included) and returns its result.
func (e *Engine) Segment(ctx context.Context, in core.Input) Result {
	return e.RunTasks(ctx, []Task{{Input: in}})[0]
}
