package engine

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"tableseg/internal/artifact"
	"tableseg/internal/core"
	"tableseg/internal/csp"
	"tableseg/internal/stage"
)

// resultEnvelopeVersion versions the journal envelope below,
// independently of the stage codec it embeds. Bump it whenever the
// envelope's field set or meaning changes.
const resultEnvelopeVersion = 1

// resultVersion is the combined version written into result keys and
// payload headers: either half changing makes old journal entries
// unreachable instead of misread.
const resultVersion = uint16(stage.CodecVersion)<<8 | resultEnvelopeVersion

// resultKey addresses a task's journaled result by the content hash of
// its whole input plus a fingerprint of the effective options: two
// tasks share a journal entry exactly when the engine is guaranteed to
// compute byte-identical segmentations for them.
func resultKey(in core.Input, opts core.Options) artifact.Key {
	h := sha256.New()
	h.Write([]byte(InputKey(in)))
	h.Write([]byte{0})
	// Options (including the nested solver parameter structs) are plain
	// scalar data, so the %#v rendering is a complete, deterministic
	// fingerprint: any field change — method, solver, thresholds, seeds
	// — changes the key.
	fmt.Fprintf(h, "%#v", opts)
	k := artifact.Key{Kind: artifact.KindResult, Version: resultVersion}
	h.Sum(k.Hash[:0])
	return k
}

// journalSentinels maps the typed pipeline errors worth journaling to
// stable wire codes. Only these errors are deterministic outcomes of
// (input, options) — cancellations and environmental failures must
// never be replayed onto a resumed batch. Codes are append-only.
var journalSentinels = []struct {
	code uint64
	err  error
}{
	{1, core.ErrTooFewListPages},
	{2, core.ErrNoDetailPages},
	{3, core.ErrBadTarget},
	{4, core.ErrNoTableSlot},
	{5, core.ErrNoDetailEvidence},
	{6, core.ErrCSPUnsatisfiable},
	{7, core.ErrBadOptions},
}

// journaledError is a replayed task error: it reproduces the original
// message byte-for-byte and unwraps to the original sentinel, so
// errors.Is works identically on fresh and resumed results.
type journaledError struct {
	msg      string
	sentinel error
}

func (e *journaledError) Error() string { return e.msg }
func (e *journaledError) Unwrap() error { return e.sentinel }

// encodeResult serializes a completed task result for the journal. It
// reports false — journal nothing — when the outcome is not a pure
// function of (input, options): a cancellation, or an error outside
// the typed sentinel set.
func encodeResult(res Result) ([]byte, bool) {
	var code uint64
	if res.Err != nil {
		for _, s := range journalSentinels {
			if errors.Is(res.Err, s.err) {
				code = s.code
				break
			}
		}
		if code == 0 {
			return nil, false
		}
	}
	e := stage.NewEncoder(artifact.KindResult, resultVersion)
	e.Uint(code)
	if code != 0 {
		e.Str(res.Err.Error())
	}
	e.Bool(res.Seg != nil)
	if res.Seg != nil {
		encodeSegmentation(e, res.Seg)
	}
	return e.Bytes(), true
}

// encodeSegmentation journals every output-bearing Segmentation field.
// The PHMM diagnostic model is deliberately excluded: it is a large
// training artifact that no output path (JSON, CSV, text, api/v1
// responses) reads, so resumed results stay byte-identical everywhere
// while the journal stays small. Resumed results carry PHMM == nil.
func encodeSegmentation(e *stage.Encoder, seg *core.Segmentation) {
	stage.EncodeRecordsInto(e, seg.Records)
	e.Uint(uint64(seg.Method))
	e.Str(seg.Solver)
	e.Bool(seg.UsedWholePage)
	e.Int(int64(seg.EnumerationStripped))
	e.Bool(seg.Vertical)
	e.Float(seg.TemplateQuality)
	e.Int(int64(seg.TotalExtracts))
	e.Int(int64(seg.Analyzed))
	e.Int(int64(seg.CSPStatus))
	e.Bool(seg.Relaxed)
	e.Len(len(seg.ColumnLabels), seg.ColumnLabels == nil)
	for _, l := range seg.ColumnLabels {
		e.Str(l)
	}
}

// decodeResult reverses encodeResult. Any malformed payload is
// reported as a miss (false), never an error or panic — the journal is
// a cache, and recomputing is always correct.
func decodeResult(data []byte) (Result, bool) {
	d, err := stage.NewDecoder(data, artifact.KindResult, resultVersion)
	if err != nil {
		return Result{}, false
	}
	var res Result
	code, err := d.Uint()
	if err != nil {
		return Result{}, false
	}
	if code != 0 {
		msg, err := d.Str()
		if err != nil {
			return Result{}, false
		}
		var sentinel error
		for _, s := range journalSentinels {
			if s.code == code {
				sentinel = s.err
				break
			}
		}
		if sentinel == nil {
			return Result{}, false
		}
		res.Err = &journaledError{msg: msg, sentinel: sentinel}
	}
	present, err := d.Bool()
	if err != nil {
		return Result{}, false
	}
	if present {
		seg, ok := decodeSegmentation(d)
		if !ok {
			return Result{}, false
		}
		res.Seg = seg
	}
	if d.Finish() != nil {
		return Result{}, false
	}
	return res, true
}

func decodeSegmentation(d *stage.Decoder) (*core.Segmentation, bool) {
	seg := &core.Segmentation{}
	recs, err := stage.DecodeRecordsFrom(d)
	if err != nil {
		return nil, false
	}
	seg.Records = recs
	m, err := d.Uint()
	if err != nil {
		return nil, false
	}
	seg.Method = core.Method(m)
	if seg.Solver, err = d.Str(); err != nil {
		return nil, false
	}
	if seg.UsedWholePage, err = d.Bool(); err != nil {
		return nil, false
	}
	es, err := d.Int()
	if err != nil {
		return nil, false
	}
	seg.EnumerationStripped = int(es)
	if seg.Vertical, err = d.Bool(); err != nil {
		return nil, false
	}
	if seg.TemplateQuality, err = d.Float(); err != nil {
		return nil, false
	}
	te, err := d.Int()
	if err != nil {
		return nil, false
	}
	seg.TotalExtracts = int(te)
	an, err := d.Int()
	if err != nil {
		return nil, false
	}
	seg.Analyzed = int(an)
	cs, err := d.Int()
	if err != nil {
		return nil, false
	}
	seg.CSPStatus = csp.Status(cs)
	if seg.Relaxed, err = d.Bool(); err != nil {
		return nil, false
	}
	n, isNil, err := d.Len()
	if err != nil {
		return nil, false
	}
	if !isNil {
		seg.ColumnLabels = make([]string, n)
		for i := range seg.ColumnLabels {
			if seg.ColumnLabels[i], err = d.Str(); err != nil {
				return nil, false
			}
		}
	}
	return seg, true
}
