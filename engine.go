package tableseg

import (
	"tableseg/internal/core"
	"tableseg/internal/engine"
)

// Engine is a reusable, concurrent batch segmenter: tasks fan out over
// a bounded worker pool, per-site templates and tokenized sample pages
// are cached by list-page content hash, and each result carries typed
// errors plus per-stage instrumentation. Results are identical to
// serial Segment calls regardless of concurrency.
//
//	eng, err := tableseg.NewEngine(tableseg.EngineConfig{
//	    Options: tableseg.DefaultOptions(tableseg.Probabilistic),
//	})
//	for _, res := range eng.SegmentAll(ctx, inputs) {
//	    if res.Err != nil { ... }
//	    use(res.Seg, res.Stats)
//	}
type Engine = engine.Engine

// EngineConfig configures NewEngine; see engine.Config.
type EngineConfig = engine.Config

// Task is one unit of Engine batch work (input plus optional ID and
// per-task options override).
type Task = engine.Task

// Result is the outcome of one Engine task: segmentation or typed
// error, plus TaskStats.
type Result = engine.Result

// TaskStats is the per-task instrumentation record: stage wall times,
// solver effort counters, total wall time, and cache outcome.
type TaskStats = engine.TaskStats

// Stats is the pipeline's per-stage instrumentation embedded in
// TaskStats.
type Stats = core.Stats

// StageTiming is one pipeline stage's aggregated wall time within a
// Stats collection (Stats.Stages lists them in pipeline order).
type StageTiming = core.StageTiming

// CacheStats is an Engine's aggregate artifact-cache counters
// (content-addressed tokenization and per-site template preps); see
// Engine.CacheStats.
type CacheStats = engine.CacheStats

// NewEngine creates an Engine after validating the configuration
// (ErrBadOptions on a bad one).
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }
