package tableseg

import (
	"tableseg/internal/artifact"
	"tableseg/internal/core"
	"tableseg/internal/engine"
	"tableseg/internal/stage"
)

// Engine is a reusable, concurrent batch segmenter: tasks fan out over
// a bounded worker pool, per-site templates and tokenized sample pages
// are cached by list-page content hash, and each result carries typed
// errors plus per-stage instrumentation. Results are identical to
// serial Segment calls regardless of concurrency.
//
//	eng, err := tableseg.NewEngine(tableseg.EngineConfig{
//	    Options: tableseg.DefaultOptions(tableseg.Probabilistic),
//	})
//	for _, res := range eng.SegmentAll(ctx, inputs) {
//	    if res.Err != nil { ... }
//	    use(res.Seg, res.Stats)
//	}
//
// Three submission surfaces share the pool and caches: SegmentAll /
// RunTasks for fixed batches, Stream for an order-independent,
// backpressured pipe of tasks, and Submit/Close for long-running
// services that admit independent one-off tasks (tablesegd is built on
// it). All of them produce results byte-identical to serial Segment
// calls.
type Engine = engine.Engine

// EngineConfig configures NewEngine; see engine.Config.
type EngineConfig = engine.Config

// Task is one unit of Engine batch work (input plus optional ID and
// per-task options override).
type Task = engine.Task

// Result is the outcome of one Engine task: segmentation or typed
// error, plus TaskStats.
type Result = engine.Result

// TaskStats is the per-task instrumentation record: stage wall times,
// solver effort counters, total wall time, and cache outcome.
type TaskStats = engine.TaskStats

// Stats is the pipeline's per-stage instrumentation embedded in
// TaskStats.
type Stats = core.Stats

// StageTiming is one pipeline stage's aggregated wall time within a
// Stats collection (Stats.Stages lists them in pipeline order).
type StageTiming = core.StageTiming

// CacheStats is an Engine's aggregate artifact-cache counters:
// content-addressed tokenization, per-site template preps, resumed-
// batch journal lookups, and per-tier store counters; see
// Engine.CacheStats.
type CacheStats = engine.CacheStats

// CacheTierStats is one cache tier's counter snapshot (hits, misses,
// puts, evictions, absorbed errors, resident entries/bytes), reported
// in CacheStats.Tiers with the fast tier first.
type CacheTierStats = artifact.Stats

// Observer receives per-stage instrumentation callbacks; attach one
// via EngineConfig.Observer to collect metrics (latency histograms,
// tracing) without forking the engine. Implementations must be safe
// for concurrent use — the engine runs tasks on many goroutines.
type Observer = stage.Observer

// NewEngine creates an Engine after validating the configuration
// (ErrBadOptions on a bad one).
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// InputKey returns the hex content hash of a segmentation input (list
// pages, target, detail pages) — the engine's coalescing key: two
// inputs share a key exactly when the engine computes byte-identical
// segmentations for them under equal options.
func InputKey(in Input) string { return engine.InputKey(in) }
