# Convenience targets for the tableseg reproduction.

GO ?= go

.PHONY: all build test vet lint lint-json lint-sarif lint-self lint-alloc update-locks serve-smoke resume-smoke check bench bench-stages bench-check experiments results corpus cover fuzz clean

all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: determinism, context discipline,
# error wrapping, float equality, stage purity, deprecated-API calls,
# the CFG-based concurrency checks, the dataflow checks (rngflow,
# probflow, aliasflow), the interprocedural call-graph checks
# (ctxflow, lockflow, httpresp), the schema-lock drift checks
# (wiredrift, codecdrift) and the escape/borrow checks (borrowflow,
# poolsafe, hotalloc — see internal/analysis). Exits non-zero on any
# finding. The committed lint/hotalloc-baseline.json suppresses the
# known hot-path allocation sites (the perf work's worklist), so only
# *new* sites gate; -baseline-strict keeps it honest — fixing a site
# without re-recording the baseline fails the run. LINTCACHE keys
# cached per-package results by content hash; set LINTCACHE= to force
# a full re-analysis.
LINTCACHE ?= .tableseglint-cache
LINTBASELINE = -baseline lint/hotalloc-baseline.json -baseline-strict

lint: vet
	$(GO) run ./cmd/tableseglint -cache '$(LINTCACHE)' $(LINTBASELINE)

# Machine-readable variants of the same gate: a flat JSON array for
# scripting, and a SARIF 2.1.0 log (written to tableseglint.sarif,
# what the CI lint job uploads as an artifact). Both exit 1 on
# findings, like lint.
lint-json: vet
	$(GO) run ./cmd/tableseglint -json -cache '$(LINTCACHE)' $(LINTBASELINE)

lint-sarif: vet
	$(GO) run ./cmd/tableseglint -sarif -cache '$(LINTCACHE)' $(LINTBASELINE) > tableseglint.sarif

# Advisory allocation-site inventory for the declared hot paths
# (lint/hotpaths.conf): runs hotalloc alone, unfiltered by the
# baseline, and writes the JSON artifact CI uploads. Always exits 0 —
# the inventory is the burn-down chart, the lint gate is above.
lint-alloc:
	$(GO) run ./cmd/tableseglint -alloc-inventory > tableseglint-alloc.json

# Self-lint: run the full suite (all 20 analyzers) over the analysis
# machinery itself — so the linter is held to its own invariants — and
# over the daemon stack (api/v1, internal/server and its client),
# which was written to pass every concurrency analyzer without
# exemptions. Including api/v1 also makes wiredrift gate the committed
# wire lock here. -baseline-strict keeps the (currently empty)
# baseline honest: a stale suppression fails the run. CI's selflint
# job runs this and uploads tableseglint-self.sarif.
lint-self:
	$(GO) run ./cmd/tableseglint -cache '$(LINTCACHE)' -baseline lint/selflint-baseline.json -baseline-strict internal/analysis internal/analysis/schema internal/analysis/callgraph internal/analysis/cfg internal/analysis/dataflow internal/analysis/escape cmd/tableseglint api/v1 internal/server internal/server/client

# Regenerate the two committed schema locks (lint/schema-apiv1.lock,
# lint/schema-artifacts.lock) from the live tree. Deterministic: a
# second run is a byte-identical no-op, which CI's lock-drift job
# checks with git diff. Refuses to rewrite breaking drift — restore
# the shape, start api/v2, or bump the codec version instead.
update-locks:
	$(GO) run ./cmd/tableseglint -update-locks

# End-to-end daemon smoke test: start tablesegd, segment a synthetic
# site through `tableseg -remote`, assert byte-identical output to the
# in-process path, check /healthz and /varz, drain via SIGTERM.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end checkpoint/resume smoke test: run a batch over the
# synthetic corpus, kill -9 it mid-run, resume over the half-written
# cache with -resume, and assert the -json and -csv outputs are
# byte-identical to an uninterrupted reference run.
resume-smoke:
	./scripts/resume-smoke.sh

test: vet
	$(GO) test ./...

# Full gate: static analysis plus the test suite under the race
# detector (the batch engine is concurrent; this is the configuration
# CI runs).
check: lint
	$(GO) test -race ./...

# The paper's tables, figures, ablations, baselines and extensions.
experiments:
	$(GO) run ./cmd/experiments -all -seeds 42,43,44,45

# Regenerate the checked-in reference outputs under ./results.
results:
	$(GO) run ./cmd/experiments -table 1 > results/table1.txt
	$(GO) run ./cmd/experiments -table 2 > results/table2.txt
	$(GO) run ./cmd/experiments -table 3 > results/table3.txt
	$(GO) run ./cmd/experiments -table 4 > results/table4.txt
	$(GO) run ./cmd/experiments -ablations > results/ablations.txt
	$(GO) run ./cmd/experiments -baselines > results/baselines.txt
	$(GO) run ./cmd/experiments -extensions > results/extensions.txt
	$(GO) run ./cmd/experiments -scale > results/scale.txt
	$(GO) run ./cmd/experiments -seeds 42,43,44,45 > results/seeds.txt

# One benchmark per table/figure (see DESIGN.md's index), plus the
# per-stage microbenchmarks. The stage/solver results are exported as
# BENCH_stages.json for structured regression diffs.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -filter '^(Stage|Solver)' -out BENCH_stages.json

# The stage/solver microbenchmarks alone (what CI smoke-runs).
bench-stages:
	$(GO) test -bench '^(BenchmarkStage|BenchmarkSolver)' -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -filter '^(Stage|Solver)' -out BENCH_stages.json

# Re-run the stage/solver microbenchmarks and diff against the
# committed BENCH_stages.json. Advisory: regressions beyond the
# tolerance are printed, never fatal (CI runners jitter), and the
# committed file is left untouched.
bench-check:
	$(GO) test -bench '^(BenchmarkStage|BenchmarkSolver)' -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -filter '^(Stage|Solver)' -baseline BENCH_stages.json -tolerance 30 -out /dev/null

# Render the synthetic twelve-site corpus to ./corpus.
corpus:
	$(GO) run ./cmd/sitegen -out corpus

cover:
	$(GO) test -cover ./...

# Short exploratory fuzzing of the HTML lexer, the extraction front
# end and the artifact codec (decode of arbitrary bytes must error,
# never panic; decodable artifacts must round-trip).
fuzz:
	$(GO) test -fuzz=FuzzTokenize -fuzztime=30s ./internal/htmlx
	$(GO) test -fuzz=FuzzExtracts -fuzztime=30s ./internal/extract
	$(GO) test -fuzz=FuzzArtifactCodec -fuzztime=30s ./internal/stage

clean:
	rm -rf corpus .tableseglint-cache
	rm -f tableseglint.sarif tableseglint-alloc.json
