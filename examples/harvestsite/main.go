// Harvestsite: the §3 vision through the public API — from one entry
// URL to the site's relation as CSV.
//
// A generated twelve-record county site is served as an in-memory map
// (swap in tableseg.HTTPFetcher{} for a live site); the harvester
// follows the Next link to find the second result page, fetches every
// linked page, rejects the advertisements, segments both pages, and
// merges them into one deduplicated relation with mined column names
// and inferred schema patterns.
//
//	go run ./examples/harvestsite
package main

import (
	"fmt"
	"log"

	"tableseg"
	"tableseg/internal/sitegen"
)

func main() {
	site, err := sitegen.GenerateBySlug("butler", 7)
	if err != nil {
		log.Fatal(err)
	}

	h := &tableseg.Harvester{
		Fetcher: tableseg.MapFetcher(site.SiteMap()),
		Options: tableseg.DefaultOptions(tableseg.Probabilistic),
	}
	table, results, err := h.HarvestAll("/list1.html")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("harvested %d result pages\n", len(results))
	for _, res := range results {
		fmt.Printf("  %s: %d detail pages, %d links rejected\n",
			res.ListURL, len(res.DetailURLs), len(res.RejectedURLs))
	}

	fmt.Printf("\nrelation: %d rows x %d columns\n", table.NumRows(), len(table.Columns))
	schema := table.Schema()
	for c, name := range table.Columns {
		fmt.Printf("  %-10s %s\n", name, schema[c])
	}

	fmt.Println("\nCSV:")
	fmt.Print(renderCSV(table))
}

// renderCSV is a minimal inline CSV writer for the demo (the library's
// WriteCSV operates on a single Segmentation; the merged relation is a
// plain rows×columns table).
func renderCSV(t *tableseg.RelationTable) string {
	out := ""
	out += join(t.Columns) + "\n"
	for i, row := range t.Rows {
		if i == 5 {
			out += "...\n"
			break
		}
		out += join(row) + "\n"
	}
	return out
}

func join(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}
