// Roundtrip: reconstruct the relational table behind a hidden-Web site
// (§3.4 and §6.3's "reconstruct the relational database behind the Web
// site"). The probabilistic method assigns every extract a column label
// L1..Lk as well as a record; stacking the records by column rebuilds
// the original table.
//
//	go run ./examples/roundtrip
package main

import (
	"fmt"
	"log"
	"strings"

	"tableseg"
	"tableseg/internal/sitegen"
)

func main() {
	site, err := sitegen.GenerateBySlug("allegheny", 42)
	if err != nil {
		log.Fatal(err)
	}
	lp := site.Lists[0]

	in := tableseg.Input{Target: 0}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, tableseg.Page{HTML: l.HTML})
	}
	for _, d := range lp.Details {
		in.DetailPages = append(in.DetailPages, tableseg.Page{HTML: d})
	}

	seg, err := tableseg.SegmentProbabilistic(in)
	if err != nil {
		log.Fatal(err)
	}

	table := tableseg.ReconstructTable(seg)
	fmt.Printf("reconstructed %d rows x %d columns\n\n", len(table), width(table))
	for i, row := range table {
		fmt.Printf("%2d | %s\n", i+1, strings.Join(row, " | "))
		if i == 7 {
			fmt.Println("   | ...")
			break
		}
	}

	// Verify against ground truth: every truth value appears in its row.
	missing := 0
	for ri, truth := range lp.Truth {
		if ri >= len(table) {
			missing += len(truth.Values)
			continue
		}
		rowText := strings.Join(table[ri], " ")
		for _, v := range truth.Values {
			if !strings.Contains(rowText, v) {
				missing++
			}
		}
	}
	fmt.Printf("\nground-truth values missing from reconstruction: %d\n", missing)
}

func width(table [][]string) int {
	w := 0
	for _, row := range table {
		if len(row) > w {
			w = len(row)
		}
	}
	return w
}
