// Corrections: the Michigan dirty-data scenario of §6.3.
//
// One inmate's status reads "Parole" on the list page but "Parolee" on
// the detail page, and the bare word "Parole" appears in an unrelated
// context on a different inmate's detail page. The strict CSP becomes
// unsatisfiable and must descend the relaxation ladder; the
// probabilistic model absorbs the inconsistency through its soft
// detail-page evidence. This example surfaces both behaviours.
//
//	go run ./examples/corrections
package main

import (
	"fmt"
	"log"

	"tableseg"
	"tableseg/internal/sitegen"
)

func main() {
	site, err := sitegen.GenerateBySlug("michigan", 42)
	if err != nil {
		log.Fatal(err)
	}
	pageIdx := 1 // the page carrying the Parole/Parolee mismatch
	lp := site.Lists[pageIdx]

	in := tableseg.Input{Target: pageIdx}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, tableseg.Page{HTML: l.HTML})
	}
	for _, d := range lp.Details {
		in.DetailPages = append(in.DetailPages, tableseg.Page{HTML: d})
	}

	cspSeg, err := tableseg.SegmentCSP(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSP status: %s (relaxed=%v)\n", cspSeg.CSPStatus, cspSeg.Relaxed)
	fmt.Printf("CSP segmented %d of %d records\n\n", len(cspSeg.Records), len(lp.Truth))

	probSeg, err := tableseg.SegmentProbabilistic(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probabilistic segmented %d of %d records (EM iterations: %d, loglik %.1f)\n\n",
		len(probSeg.Records), len(lp.Truth), probSeg.PHMM.Iters, probSeg.PHMM.LogLik)

	// Show the record carrying the mismatch: its "Parole" status string
	// has no support on its own detail page, yet both methods keep the
	// record intact (the CSP by attaching the unassignable extract to
	// the last assigned one, the PHMM by paying the epsilon evidence).
	for _, rec := range probSeg.Records {
		for _, ex := range rec.Extracts {
			if ex.Text() == "Parole" {
				fmt.Printf("mismatch record (detail page %d): %v\n", rec.Index+1, rec.Texts())
			}
		}
	}
}
