// Quickstart: segment a tiny white-pages listing into records using
// only the content redundancy between the list page and its detail
// pages — no training data, no hand-written rules.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tableseg"
)

// Two list pages from the same (imaginary) site. The second page lets
// the library induce the page template: everything the pages share is
// boilerplate, everything else is data.
const listPage1 = `<html><body><h1>People Finder</h1>
<p>Search Results Below - Refine Query Anytime</p>
<table>
<tr><td>Ann Lee</td><td>12 Oak St</td><td>(555) 283-9922</td></tr>
<tr><td>Bob Day</td><td>99 Elm Rd</td><td>(555) 761-0301</td></tr>
<tr><td>Cal Roe</td><td>7 Pine Ave</td><td>(555) 440-1188</td></tr>
</table>
<p>Copyright 2004 PeopleFinder Inc</p></body></html>`

const listPage2 = `<html><body><h1>People Finder</h1>
<p>Search Results Below - Refine Query Anytime</p>
<table>
<tr><td>Dee Fox</td><td>4 Elm Ct</td><td>(555) 019-3321</td></tr>
<tr><td>Eli Orr</td><td>31 Ash Ln</td><td>(555) 678-4410</td></tr>
</table>
<p>Copyright 2004 PeopleFinder Inc</p></body></html>`

// One detail page per record of listPage1, in the order their links
// would appear. Each shows a second view of its record.
var detailPages = []string{
	`<html><body><h2>Listing</h2><p>Ann Lee</p><p>12 Oak St</p><p>(555) 283-9922</p></body></html>`,
	`<html><body><h2>Listing</h2><p>Bob Day</p><p>99 Elm Rd</p><p>(555) 761-0301</p></body></html>`,
	`<html><body><h2>Listing</h2><p>Cal Roe</p><p>7 Pine Ave</p><p>(555) 440-1188</p></body></html>`,
}

func main() {
	in := tableseg.Input{
		ListPages: []tableseg.Page{
			{Name: "list1", HTML: listPage1},
			{Name: "list2", HTML: listPage2},
		},
		Target: 0, // segment listPage1
	}
	for i, d := range detailPages {
		in.DetailPages = append(in.DetailPages, tableseg.Page{Name: fmt.Sprintf("detail%d", i+1), HTML: d})
	}

	// The probabilistic method also labels columns (L1, L2, ...).
	seg, err := tableseg.SegmentProbabilistic(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented %d records (template quality %.2f)\n\n", len(seg.Records), seg.TemplateQuality)
	for _, rec := range seg.Records {
		fmt.Printf("record %d:\n", rec.Index+1)
		for i, ex := range rec.Extracts {
			fmt.Printf("  L%d: %s\n", rec.Columns[i]+1, ex.Text())
		}
	}

	// The CSP method solves the same instance with hard constraints.
	cspSeg, err := tableseg.SegmentCSP(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCSP agrees: %v (status %s)\n", sameBoundaries(seg, cspSeg), cspSeg.CSPStatus)
}

func sameBoundaries(a, b *tableseg.Segmentation) bool {
	if len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		if len(a.Records[i].Extracts) != len(b.Records[i].Extracts) {
			return false
		}
	}
	return true
}
