// Wrap: from unsupervised segmentation to a site wrapper.
//
// The expensive step of the paper's pipeline — fetching every detail
// page — only has to happen once per site. This example segments a
// county property-tax site's first result page using its detail pages,
// learns a record-start wrapper from that segmentation, and then
// extracts the site's second result page from its layout alone: no
// detail fetches, no model fitting, microseconds per page.
//
//	go run ./examples/wrap
package main

import (
	"fmt"
	"log"
	"strings"

	"tableseg"
	"tableseg/internal/sitegen"
	"tableseg/internal/token"
	"tableseg/internal/wrapper"
)

func main() {
	site, err := sitegen.GenerateBySlug("allegheny", 7)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: unsupervised segmentation of page 1 (needs details).
	in := tableseg.Input{Target: 0}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, tableseg.Page{HTML: l.HTML})
	}
	for _, d := range site.Lists[0].Details {
		in.DetailPages = append(in.DetailPages, tableseg.Page{HTML: d})
	}
	seg, err := tableseg.SegmentProbabilistic(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: segmented %d records using %d detail pages\n",
		len(seg.Records), len(in.DetailPages))

	// Phase 2: learn the wrapper from the segmented page.
	page0 := token.Tokenize(site.Lists[0].HTML)
	w, err := wrapper.Learn(page0, seg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: learned record-start signature %s\n", strings.Join(w.Signature, ""))

	// Phase 3: extract the second page with layout only.
	page1 := token.Tokenize(site.Lists[1].HTML)
	got := w.Extract(page1)
	fmt.Printf("phase 3: extracted %d records from page 2 with no detail fetches\n\n", len(got.Records))
	for i, rec := range got.Records {
		fmt.Printf("%2d | %s\n", i+1, strings.Join(rec.Texts(), " | "))
		if i == 4 {
			fmt.Println("   | ...")
			break
		}
	}

	// Sanity: the wrapper output matches the generator's ground truth.
	match := 0
	for ri, tr := range site.Lists[1].Truth {
		if ri < len(got.Records) && strings.Contains(strings.Join(got.Records[ri].Texts(), " "), tr.Values[0]) {
			match++
		}
	}
	fmt.Printf("\nrecords whose first field matches ground truth: %d/%d\n", match, len(site.Lists[1].Truth))
}
