// Whitepages: the Superpages scenario of the paper's Figure 1 and §6.3.
//
// The generated site has the disjunction RoadRunner-style union-free
// grammars cannot express — records with a missing street address show
// a gray "street address not available" note with different markup —
// plus duplicated names/phones across records (the paper's two "John
// Smith" listings) and a volatile ad header that defeats page-template
// finding. The example shows that the layout-only baseline fails while
// both content-based methods segment the page.
//
//	go run ./examples/whitepages
package main

import (
	"fmt"
	"log"

	"tableseg"
	"tableseg/internal/baseline"
	"tableseg/internal/sitegen"
	"tableseg/internal/token"
)

func main() {
	site, err := sitegen.GenerateBySlug("superpages", 42)
	if err != nil {
		log.Fatal(err)
	}
	pageIdx := 1 // the 15-record page
	lp := site.Lists[pageIdx]

	in := tableseg.Input{Target: pageIdx}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, tableseg.Page{HTML: l.HTML})
	}
	for _, d := range lp.Details {
		in.DetailPages = append(in.DetailPages, tableseg.Page{HTML: d})
	}

	// Layout-only union-free inference: the missing-address records use
	// different tags, so there is no single row template.
	toks := token.Tokenize(lp.HTML)
	if _, err := baseline.UnionFree(toks, 0, len(toks)); err != nil {
		fmt.Println("union-free row template:", err)
	} else {
		fmt.Println("union-free row template: unexpectedly succeeded")
	}

	// Content-based segmentation sails through.
	for _, m := range []tableseg.Method{tableseg.Probabilistic, tableseg.CSP} {
		seg, err := tableseg.Segment(in, tableseg.DefaultOptions(m))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d records", m, len(seg.Records))
		if seg.UsedWholePage {
			fmt.Printf(" (page template problem: entire page used)")
		}
		fmt.Println()
		for _, rec := range seg.Records[:3] {
			fmt.Printf("  record %2d: %v\n", rec.Index+1, rec.Texts())
		}
		fmt.Println("  ...")
	}

	fmt.Printf("\nground truth has %d records; first: %v\n", len(lp.Truth), lp.Truth[0].Values)
}
