module tableseg

go 1.22
