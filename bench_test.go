package tableseg

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index):
//
//	go test -bench=. -benchmem
//
// Benchmarks named BenchmarkTableN / BenchmarkFigureN correspond to the
// paper's artifacts; BenchmarkPerPageLatency checks §6.1's "the
// algorithms took only a few seconds per page"; BenchmarkAblation*
// exercises the DESIGN.md ablations.

import (
	"context"
	"testing"

	"tableseg/internal/classify"
	"tableseg/internal/core"
	"tableseg/internal/csp"
	"tableseg/internal/engine"
	"tableseg/internal/experiments"
	"tableseg/internal/extract"
	"tableseg/internal/pagetemplate"
	"tableseg/internal/phmm"
	"tableseg/internal/sitegen"
	"tableseg/internal/token"
	"tableseg/internal/wrapper"
)

// workedExample tokenizes the §3 Superpages example once.
func workedExample(b *testing.B) (list []token.Token, details [][]token.Token) {
	b.Helper()
	listHTML, detailHTML := experiments.ExamplePages()
	list = token.Tokenize(listHTML)
	for _, d := range detailHTML {
		details = append(details, token.Tokenize(d))
	}
	return list, details
}

// BenchmarkTable1ObservationMatrix measures building the Table 1
// observation matrix (extract matching across detail pages).
func BenchmarkTable1ObservationMatrix(b *testing.B) {
	list, details := workedExample(b)
	ex := extract.Split(list, 0, len(list))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := extract.Observe(ex, details, nil)
		if len(obs) != len(ex) {
			b.Fatal("bad observation count")
		}
	}
}

// BenchmarkTable2Assignment measures the §4 CSP solve that produces the
// Table 2 record assignment.
func BenchmarkTable2Assignment(b *testing.B) {
	ex := benchExample(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := csp.SolveSegmentationContext(context.Background(), ex.Input, csp.SolveParams{ExactCheck: true})
		if res.Status != csp.Solved {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkTable3Positions measures the position-index construction
// behind Table 3.
func BenchmarkTable3Positions(b *testing.B) {
	list, details := workedExample(b)
	ex := extract.Split(list, 0, len(list))
	obs := extract.Observe(ex, details, nil)
	analyzed := extract.InformativeSubset(obs, len(details))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := extract.PositionGroups(obs, analyzed, len(details))
		if len(groups) == 0 {
			b.Fatal("no position groups")
		}
	}
}

// BenchmarkTable4Probabilistic regenerates the probabilistic column of
// Table 4 (12 sites, 24 list pages).
func BenchmarkTable4Probabilistic(b *testing.B) {
	benchTable4(b, core.Probabilistic)
}

// BenchmarkTable4CSP regenerates the CSP column of Table 4.
func BenchmarkTable4CSP(b *testing.B) {
	benchTable4(b, core.CSP)
}

func benchTable4(b *testing.B, method core.Method) {
	type page struct {
		in core.Input
	}
	var pages []page
	for _, p := range sitegen.Profiles() {
		site := sitegen.Generate(p, experiments.DefaultSeed)
		for pageIdx := range site.Lists {
			pages = append(pages, page{in: experiments.BuildInput(site, pageIdx)})
		}
	}
	opts := core.DefaultOptions(method)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pg := range pages {
			if _, err := core.SegmentContext(context.Background(), pg.in, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineThroughput compares serial Segment calls against the
// batch engine over the full 24-page corpus (probabilistic method).
// The engine's edge comes from the worker pool plus the per-site
// template/token cache; on 4+ cores it should exceed 1.5x the serial
// throughput.
func BenchmarkEngineThroughput(b *testing.B) {
	var inputs []core.Input
	for _, p := range sitegen.Profiles() {
		site := sitegen.Generate(p, experiments.DefaultSeed)
		for pageIdx := range site.Lists {
			inputs = append(inputs, experiments.BuildInput(site, pageIdx))
		}
	}
	opts := core.DefaultOptions(core.Probabilistic)
	pages := int64(len(inputs))
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				if _, err := core.SegmentContext(context.Background(), in, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(pages)/b.Elapsed().Seconds(), "pages/s")
	})
	b.Run("engine", func(b *testing.B) {
		eng, err := engine.New(engine.Config{Options: opts})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range eng.SegmentAll(context.Background(), inputs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(pages)/b.Elapsed().Seconds(), "pages/s")
	})
}

// BenchmarkPerPageLatency measures one representative list page per
// method — the paper's §6.1 claim is "a few seconds to run in all
// cases" on 2004 hardware.
func BenchmarkPerPageLatency(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "allegheny"), experiments.DefaultSeed)
	in := experiments.BuildInput(site, 0)
	for _, m := range []core.Method{core.Probabilistic, core.CSP} {
		opts := core.DefaultOptions(m)
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SegmentContext(context.Background(), in, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustProfile(b *testing.B, slug string) sitegen.Profile {
	b.Helper()
	p, err := sitegen.ProfileBySlug(slug)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// phmmInstance builds a representative learning instance (20 records x
// 4 fields).
func phmmInstance() phmm.Instance {
	types := []token.Type{
		token.TypeOf("John") | token.TypeOf("Smith"),
		token.TypeOf("221") | token.TypeOf("Washington"),
		token.TypeOf("Findlay,") | token.TypeOf("OH"),
		token.TypeOf("(740)") | token.TypeOf("335-5555"),
	}
	var inst phmm.Instance
	inst.NumRecords = 20
	for r := 0; r < 20; r++ {
		for f := 0; f < 4; f++ {
			inst.TypeVecs = append(inst.TypeVecs, types[f].Vector())
			inst.Candidates = append(inst.Candidates, []int{r})
		}
	}
	return inst
}

// BenchmarkFigure2Model measures EM inference under the flat-hazard
// model of Figure 2 (no period model).
func BenchmarkFigure2Model(b *testing.B) {
	inst := phmmInstance()
	params := phmm.DefaultParams()
	params.PeriodModel = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phmm.SegmentContext(context.Background(), inst, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3PeriodModel measures EM inference with the explicit
// record-period model of Figure 3.
func BenchmarkFigure3PeriodModel(b *testing.B) {
	inst := phmmInstance()
	params := phmm.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phmm.SegmentContext(context.Background(), inst, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRelaxation measures the CSP with and without the
// relaxation ladder on the dirtiest site.
func BenchmarkAblationRelaxation(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "canada411"), experiments.DefaultSeed)
	in := experiments.BuildInput(site, 1)
	for _, noRelax := range []bool{false, true} {
		name := "ladder"
		if noRelax {
			name = "strict-only"
		}
		opts := core.DefaultOptions(core.CSP)
		opts.CSPParams.NoRelax = noRelax
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SegmentContext(context.Background(), in, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEpsilon measures the probabilistic method under hard
// vs soft detail-page evidence on a dirty site.
func BenchmarkAblationEpsilon(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "michigan"), experiments.DefaultSeed)
	in := experiments.BuildInput(site, 1)
	for _, eps := range []float64{1e-12, 1e-3} {
		name := "soft"
		if eps < 1e-6 {
			name = "near-hard"
		}
		opts := core.DefaultOptions(core.Probabilistic)
		opts.PHMMParams.Epsilon = eps
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SegmentContext(context.Background(), in, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTokenize measures the shared tokenizer front end on a full
// generated list page.
func BenchmarkTokenize(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "allegheny"), experiments.DefaultSeed)
	html := site.Lists[0].HTML
	b.SetBytes(int64(len(html)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if toks := token.Tokenize(html); len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
}

// BenchmarkTemplateInduction measures §3.1 template finding over the
// two sample pages of a site.
func BenchmarkTemplateInduction(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "allegheny"), experiments.DefaultSeed)
	pages := [][]token.Token{
		token.Tokenize(site.Lists[0].HTML),
		token.Tokenize(site.Lists[1].HTML),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpl := pagetemplate.Induce(pages)
		if len(tpl.Skeleton) == 0 {
			b.Fatal("empty skeleton")
		}
	}
}

// BenchmarkWSAT measures the raw local-search solver on the worked
// example's constraint problem.
func BenchmarkWSAT(b *testing.B) {
	ex := benchExample(b)
	enc := csp.Encode(ex.Input, csp.Strict)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, _ := csp.SolveWSATContext(context.Background(), enc.Problem, csp.WSATParams{Seed: int64(i)})
		if !sol.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkDetailIndexing measures building the detail-page match index
// (the inner loop of observation-matrix construction).
func BenchmarkDetailIndexing(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "canada411"), experiments.DefaultSeed)
	detail := token.Tokenize(site.Lists[0].Details[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if di := extract.IndexDetail(detail); di.NumWords() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkExactSolver measures the complete DFS solver on the worked
// example (UNSAT certification path).
func BenchmarkExactSolver(b *testing.B) {
	ex := benchExample(b)
	enc := csp.Encode(ex.Input, csp.Strict)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, sat, err := csp.SolveExact(context.Background(), enc.Problem, csp.ExactParams{}); err != nil || !sat {
			b.Fatalf("sat=%v err=%v", sat, err)
		}
	}
}

// BenchmarkViterbiDecode measures MAP decoding alone (inference without
// EM) on a 20-record instance.
func BenchmarkViterbiDecode(b *testing.B) {
	inst := phmmInstance()
	params := phmm.DefaultParams()
	m := phmm.NewModel(inst.NumRecords, 4, params)
	m.FitContext(context.Background(), inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := phmm.SegmentContext(context.Background(), inst, params)
		if err != nil || len(res.Records) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassification measures detail-page identification over one
// site's linked pages (§6.1 extension).
func BenchmarkClassification(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "allegheny"), experiments.DefaultSeed)
	var linked [][]token.Token
	for _, d := range site.Lists[0].Details {
		linked = append(linked, token.Tokenize(d))
	}
	for _, a := range site.Lists[0].Ads {
		linked = append(linked, token.Tokenize(a))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sel := classify.DetailPages(linked, 0); len(sel) == 0 {
			b.Fatal("no selection")
		}
	}
}

// BenchmarkWrapperTransfer measures wrapper learning plus application
// to a fresh page (the post-segmentation fast path).
func BenchmarkWrapperTransfer(b *testing.B) {
	site := sitegen.Generate(mustProfile(b, "butler"), experiments.DefaultSeed)
	in := experiments.BuildInput(site, 0)
	seg, err := core.SegmentContext(context.Background(), in, core.DefaultOptions(core.Probabilistic))
	if err != nil {
		b.Fatal(err)
	}
	page0 := token.Tokenize(site.Lists[0].HTML)
	page1 := token.Tokenize(site.Lists[1].HTML)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := wrapper.Learn(page0, seg)
		if err != nil {
			b.Fatal(err)
		}
		if got := w.Extract(page1); len(got.Records) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkLargePage stresses the full pipeline on a 200-record list
// page (an order of magnitude beyond the paper's pages) to demonstrate
// the pipeline's scaling headroom.
func BenchmarkLargePage(b *testing.B) {
	profile := sitegen.Profile{
		Name: "Large Scale County", Slug: "largescale",
		Domain: sitegen.PropertyTax, Layout: sitegen.Grid,
		RecordsPerList: [2]int{200, 200},
	}
	site := sitegen.Generate(profile, experiments.DefaultSeed)
	in := experiments.BuildInput(site, 0)
	for _, m := range []core.Method{core.Probabilistic, core.CSP} {
		opts := core.DefaultOptions(m)
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seg, err := core.SegmentContext(context.Background(), in, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(seg.Records) != 200 {
					b.Fatalf("%d records", len(seg.Records))
				}
			}
		})
	}
}

// BenchmarkWSATDynamicWeights compares the plain local search against
// clause-weighting escape on the worked example's constraint problem.
func BenchmarkWSATDynamicWeights(b *testing.B) {
	ex := benchExample(b)
	for _, dyn := range []bool{false, true} {
		name := "static"
		if dyn {
			name = "dynamic"
		}
		enc := csp.Encode(ex.Input, csp.Strict)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, _ := csp.SolveWSATContext(context.Background(), enc.Problem, csp.WSATParams{Seed: int64(i), DynamicWeights: dyn})
				if !sol.Feasible {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

// benchExample runs the worked example for benchmark setup.
func benchExample(b *testing.B) *experiments.Example {
	b.Helper()
	ex, err := experiments.RunExample(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return ex
}
