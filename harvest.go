package tableseg

import (
	"tableseg/internal/crawl"
	"tableseg/internal/relation"
)

// The crawling layer (§3's automation vision) re-exported: point a
// Harvester at a site and it discovers result pages via Next links,
// fetches everything they link to, classifies the detail pages away
// from advertisements, and segments the records.
//
//	h := &tableseg.Harvester{Fetcher: tableseg.HTTPFetcher{}}
//	res, err := h.HarvestFrom("https://example.test/results?page=1")
//	table, _, err := h.HarvestAll("https://example.test/results?page=1")

// Fetcher retrieves a page body by URL.
type Fetcher = crawl.Fetcher

// MapFetcher serves pages from an in-memory URL→HTML map.
type MapFetcher = crawl.MapFetcher

// DirFetcher serves pages from files under a root directory.
type DirFetcher = crawl.DirFetcher

// HTTPFetcher fetches pages over HTTP.
type HTTPFetcher = crawl.HTTPFetcher

// Harvester walks a site and extracts its records.
type Harvester = crawl.Harvester

// HarvestResult is the outcome of harvesting one list page.
type HarvestResult = crawl.Result

// RelationTable is an assembled cross-page relation.
type RelationTable = relation.Table

// MergeRelation merges per-page segmentations into the site's
// deduplicated relation (§6.3's "reconstruct the relational database
// behind the Web site").
func MergeRelation(segs []*Segmentation) *RelationTable {
	return relation.Merge(segs)
}

// Links extracts the href targets of a page's anchors, resolved against
// the page URL, in document order.
func Links(pageURL, html string) []string {
	return crawl.Links(pageURL, html)
}

// DiscoverListPages follows Next links from an entry page to collect a
// site's sample list pages (§6.3's heuristic).
func DiscoverListPages(f Fetcher, entryURL string, maxPages int) ([]string, []string, error) {
	return crawl.DiscoverListPages(f, entryURL, maxPages)
}
