package tableseg

import (
	"context"

	"tableseg/internal/crawl"
	"tableseg/internal/relation"
)

// The crawling layer (§3's automation vision) re-exported: point a
// Harvester at a site and it discovers result pages via Next links,
// fetches everything they link to, classifies the detail pages away
// from advertisements, and segments the records.
//
//	h := &tableseg.Harvester{Fetcher: tableseg.HTTPFetcher{}}
//	res, err := h.HarvestFrom("https://example.test/results?page=1")
//	table, _, err := h.HarvestAll("https://example.test/results?page=1")

// Fetcher retrieves a page body by URL.
type Fetcher = crawl.Fetcher

// MapFetcher serves pages from an in-memory URL→HTML map.
type MapFetcher = crawl.MapFetcher

// DirFetcher serves pages from files under a root directory.
type DirFetcher = crawl.DirFetcher

// HTTPFetcher fetches pages over HTTP.
type HTTPFetcher = crawl.HTTPFetcher

// Harvester walks a site and extracts its records. The no-suffix
// methods are conveniences over the Context variants; like the rest of
// the public API, only this root package may mint a background context
// (internal packages are required by tableseglint to thread a caller's
// context).
type Harvester struct {
	Fetcher Fetcher
	// Options configures the segmentation pipeline; zero value selects
	// the probabilistic defaults.
	Options Options
	// ClassifyThreshold tunes detail-page clustering (0 = default).
	ClassifyThreshold float64
	// Concurrency bounds parallel fetches of the linked pages (0 = 8).
	// Fetch order does not affect results: pages keep link order.
	Concurrency int
}

func (h *Harvester) crawler() *crawl.Harvester {
	return &crawl.Harvester{
		Fetcher:           h.Fetcher,
		Options:           h.Options,
		ClassifyThreshold: h.ClassifyThreshold,
		Concurrency:       h.Concurrency,
	}
}

// Harvest fetches the sampled list pages, follows every link from the
// target page, classifies the detail set, and segments the target.
func (h *Harvester) Harvest(listURLs []string, target int) (*HarvestResult, error) {
	return h.HarvestContext(context.Background(), listURLs, target)
}

// HarvestContext is Harvest under a context: cancellation aborts the
// segmentation solve and surfaces as ctx.Err().
func (h *Harvester) HarvestContext(ctx context.Context, listURLs []string, target int) (*HarvestResult, error) {
	return h.crawler().Harvest(ctx, listURLs, target)
}

// HarvestFrom runs the complete §3 vision from a single entry URL: it
// discovers the sample list pages by following Next links, then
// harvests the entry page.
func (h *Harvester) HarvestFrom(entryURL string) (*HarvestResult, error) {
	return h.HarvestFromContext(context.Background(), entryURL)
}

// HarvestFromContext is HarvestFrom under a context.
func (h *Harvester) HarvestFromContext(ctx context.Context, entryURL string) (*HarvestResult, error) {
	return h.crawler().HarvestFrom(ctx, entryURL)
}

// HarvestAll discovers the list pages from an entry URL, harvests every
// one, and merges the per-page segmentations into the site's relation.
func (h *Harvester) HarvestAll(entryURL string) (*RelationTable, []*HarvestResult, error) {
	return h.HarvestAllContext(context.Background(), entryURL)
}

// HarvestAllContext is HarvestAll under a context.
func (h *Harvester) HarvestAllContext(ctx context.Context, entryURL string) (*RelationTable, []*HarvestResult, error) {
	return h.crawler().HarvestAll(ctx, entryURL)
}

// HarvestResult is the outcome of harvesting one list page.
type HarvestResult = crawl.Result

// RelationTable is an assembled cross-page relation.
type RelationTable = relation.Table

// MergeRelation merges per-page segmentations into the site's
// deduplicated relation (§6.3's "reconstruct the relational database
// behind the Web site").
func MergeRelation(segs []*Segmentation) *RelationTable {
	return relation.Merge(segs)
}

// Links extracts the href targets of a page's anchors, resolved against
// the page URL, in document order.
func Links(pageURL, html string) []string {
	return crawl.Links(pageURL, html)
}

// DiscoverListPages follows Next links from an entry page to collect a
// site's sample list pages (§6.3's heuristic).
func DiscoverListPages(f Fetcher, entryURL string, maxPages int) ([]string, []string, error) {
	return crawl.DiscoverListPages(f, entryURL, maxPages)
}
