package apiv1

// Metrics is the GET /varz body: a JSON snapshot of the daemon's
// operational counters. All counters are cumulative since process
// start unless noted.
type Metrics struct {
	// UptimeSeconds since the server started.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Draining is true once graceful shutdown has begun.
	Draining bool `json:"draining"`
	// InFlight counts requests currently holding an engine slot;
	// QueueDepth counts admitted requests waiting for one.
	InFlight   int64 `json:"inFlight"`
	QueueDepth int64 `json:"queueDepth"`
	// Requests breaks down every POST /v1/segment seen.
	Requests RequestCounters `json:"requests"`
	// Coalesce reports content-hash request coalescing: hits joined an
	// in-flight identical computation, misses led one.
	Coalesce CoalesceCounters `json:"coalesce"`
	// Engine reports the shared engine's artifact caches.
	Engine EngineCounters `json:"engine"`
	// Stages are per-pipeline-stage latency histograms fed by the
	// engine's observer hook, in pipeline order.
	Stages []StageHistogram `json:"stages,omitempty"`
}

// RequestCounters classifies completed requests.
type RequestCounters struct {
	Total int64 `json:"total"`
	OK    int64 `json:"ok"`
	// RateLimited, QueueFull and DrainRejected count admissions the
	// daemon refused (429, 429, 503 respectively).
	RateLimited   int64 `json:"rateLimited"`
	QueueFull     int64 `json:"queueFull"`
	DrainRejected int64 `json:"drainRejected"`
	// ByCode counts error responses per wire code.
	ByCode map[string]int64 `json:"byCode,omitempty"`
}

// CoalesceCounters reports request coalescing outcomes.
type CoalesceCounters struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// InFlightKeys is the current size of the coalescing map (0 when
	// idle — entries never outlive their computation).
	InFlightKeys int64 `json:"inFlightKeys"`
}

// EngineCounters mirrors the engine's cache statistics. Fields are
// append-only: existing names and meanings never change within v1.
type EngineCounters struct {
	TasksCompleted int64 `json:"tasksCompleted"`
	TokenHits      int64 `json:"tokenHits"`
	TokenMisses    int64 `json:"tokenMisses"`
	TemplateHits   int64 `json:"templateHits"`
	TemplateMisses int64 `json:"templateMisses"`
	CachedSites    int64 `json:"cachedSites"`
	// ResultHits and ResultMisses count result-journal lookups (always
	// zero unless the daemon runs with resume enabled).
	ResultHits   int64 `json:"resultHits"`
	ResultMisses int64 `json:"resultMisses"`
	// Tiers reports the artifact store's per-tier counters, fast tier
	// first (absent when caching is disabled).
	Tiers []CacheTier `json:"tiers,omitempty"`
}

// CacheTier is one artifact-store tier's counter snapshot.
type CacheTier struct {
	// Tier names the tier ("memory", "disk").
	Tier string `json:"tier"`
	// Hits and Misses count lookups; Puts counts stores.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// Evictions counts entries dropped to stay within the tier's byte
	// budget; Errors counts absorbed backend failures (corrupt or
	// unwritable artifacts), each surfaced to callers as a miss.
	Evictions int64 `json:"evictions"`
	Errors    int64 `json:"errors"`
	// Entries and Bytes are the tier's current residency.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// StageHistogram is one stage's latency distribution. Bounds are fixed
// per server; Counts[i] tallies observations with latency <=
// BoundsMillis[i], non-cumulatively between bounds, and Overflow
// tallies the rest.
type StageHistogram struct {
	Stage        string    `json:"stage"`
	Count        int64     `json:"count"`
	TotalMillis  float64   `json:"totalMillis"`
	BoundsMillis []float64 `json:"boundsMillis"`
	Counts       []int64   `json:"counts"`
	Overflow     int64     `json:"overflow"`
}
