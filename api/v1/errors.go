package apiv1

import (
	"context"
	"errors"
	"net/http"

	"tableseg"
)

// Code is a stable wire error code. Codes never change meaning within
// a wire version; new failure modes get new codes.
type Code string

// The v1 error codes. The first block maps one-to-one onto the
// library's sentinel errors; the second describes daemon-level
// rejections with no library counterpart.
const (
	// CodeBadRequest: the request body was not valid JSON or missed
	// required fields.
	CodeBadRequest Code = "bad_request"
	// CodeBadOptions: the configuration was rejected (unknown method,
	// unknown solver, out-of-range parameter).
	CodeBadOptions Code = "bad_options"
	// CodeTooFewListPages, CodeNoDetailPages, CodeBadTarget: the input
	// shape was invalid.
	CodeTooFewListPages Code = "too_few_list_pages"
	CodeNoDetailPages   Code = "no_detail_pages"
	CodeBadTarget       Code = "bad_target"
	// CodeNoTableSlot, CodeNoDetailEvidence, CodeCSPUnsatisfiable: the
	// pipeline ran but could not segment the page.
	CodeNoTableSlot      Code = "no_table_slot"
	CodeNoDetailEvidence Code = "no_detail_evidence"
	CodeCSPUnsatisfiable Code = "csp_unsatisfiable"
	CodeCanceled         Code = "canceled"
	CodeDeadlineExceeded Code = "deadline_exceeded"

	// CodeRateLimited: the client exhausted its token bucket.
	CodeRateLimited Code = "rate_limited"
	// CodeQueueFull: the admission queue was at capacity.
	CodeQueueFull Code = "queue_full"
	// CodeDraining: the daemon is shutting down and admits no new work.
	CodeDraining Code = "draining"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal Code = "internal"
)

// Error is the wire error: a stable code plus a human-readable
// message. It implements error, and Unwrap restores the library
// sentinel matching the code, so client-side errors.Is(err,
// tableseg.ErrNoDetailEvidence) works across the wire.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds, when nonzero, is the server's backoff hint
	// (mirrors the Retry-After header on 429 responses).
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

func (e *Error) Error() string {
	return string(e.Code) + ": " + e.Message
}

// Unwrap maps the code back onto the library sentinel (or the context
// error), so errors.Is classification survives serialization. Codes
// without a library counterpart unwrap to nil.
func (e *Error) Unwrap() error { return sentinelFor(e.Code) }

// ErrorResponse is the failure body of POST /v1/segment. Partial, when
// present, carries the diagnostics the pipeline attached to a typed
// failure (e.g. no_detail_evidence reports extract counts even though
// no records were produced).
type ErrorResponse struct {
	Error   *Error           `json:"error"`
	Partial *SegmentResponse `json:"partial,omitempty"`
}

// codeTable drives the error<->code mapping in both directions; order
// matters for FromError because errors.Is walks wrap chains.
var codeTable = []struct {
	code     Code
	sentinel error
}{
	{CodeBadOptions, tableseg.ErrBadOptions},
	{CodeTooFewListPages, tableseg.ErrTooFewListPages},
	{CodeNoDetailPages, tableseg.ErrNoDetailPages},
	{CodeBadTarget, tableseg.ErrBadTarget},
	{CodeNoTableSlot, tableseg.ErrNoTableSlot},
	{CodeNoDetailEvidence, tableseg.ErrNoDetailEvidence},
	{CodeCSPUnsatisfiable, tableseg.ErrCSPUnsatisfiable},
	{CodeDeadlineExceeded, context.DeadlineExceeded},
	{CodeCanceled, context.Canceled},
}

// CodeFromError classifies a library error into its wire code
// (CodeInternal when no sentinel matches).
func CodeFromError(err error) Code {
	for _, e := range codeTable {
		if errors.Is(err, e.sentinel) {
			return e.code
		}
	}
	return CodeInternal
}

// FromError builds the wire error for a library failure.
func FromError(err error) *Error {
	return &Error{Code: CodeFromError(err), Message: err.Error()}
}

func sentinelFor(c Code) error {
	for _, e := range codeTable {
		if e.code == c {
			return e.sentinel
		}
	}
	return nil
}

// HTTPStatus returns the HTTP status the daemon serves for a code.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeBadRequest, CodeBadOptions, CodeTooFewListPages,
		CodeNoDetailPages, CodeBadTarget:
		return http.StatusBadRequest
	case CodeNoTableSlot, CodeNoDetailEvidence, CodeCSPUnsatisfiable:
		// The request was well-formed; the content was unsegmentable.
		return http.StatusUnprocessableEntity
	case CodeCanceled:
		// Closest standard status to "client went away".
		return http.StatusRequestTimeout
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeRateLimited, CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeDraining:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
