package apiv1_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"testing"

	"tableseg"
	apiv1 "tableseg/api/v1"
	"tableseg/internal/experiments"
	"tableseg/internal/sitegen"
)

// TestRequestOptions pins the wire->library configuration mapping to
// the functional-options path: every method spelling lands on the
// matching DefaultOptions, and bad input is ErrBadOptions.
func TestRequestOptions(t *testing.T) {
	cases := []struct {
		wire string
		want tableseg.Method
	}{
		{"", tableseg.Probabilistic},
		{"prob", tableseg.Probabilistic},
		{"probabilistic", tableseg.Probabilistic},
		{"csp", tableseg.CSP},
		{"combined", tableseg.Combined},
	}
	for _, c := range cases {
		req := &apiv1.SegmentRequest{Method: c.wire}
		opts, err := req.Options()
		if err != nil {
			t.Fatalf("method %q: %v", c.wire, err)
		}
		if !reflect.DeepEqual(opts, tableseg.DefaultOptions(c.want)) {
			t.Errorf("method %q: options differ from DefaultOptions(%v)", c.wire, c.want)
		}
	}
	for _, bad := range []*apiv1.SegmentRequest{
		{Method: "quantum"},
		{Solver: "no-such-solver"},
	} {
		if _, err := bad.Options(); !errors.Is(err, tableseg.ErrBadOptions) {
			t.Errorf("request %+v: err = %v, want ErrBadOptions", bad, err)
		}
	}
}

// TestOptionsKeyNormalizesMethod: spellings of one method coalesce.
func TestOptionsKeyNormalizesMethod(t *testing.T) {
	a := (&apiv1.SegmentRequest{Method: "prob"}).OptionsKey()
	b := (&apiv1.SegmentRequest{Method: "probabilistic"}).OptionsKey()
	c := (&apiv1.SegmentRequest{}).OptionsKey()
	if a != b || b != c {
		t.Errorf("probabilistic spellings got distinct keys: %q %q %q", a, b, c)
	}
	if a == (&apiv1.SegmentRequest{Method: "csp"}).OptionsKey() {
		t.Error("csp and probabilistic share an options key")
	}
	if a == (&apiv1.SegmentRequest{Solver: "exact"}).OptionsKey() {
		t.Error("solver override did not change the options key")
	}
}

// TestErrorCodeRoundTrip: library error -> wire code -> sentinel
// restores errors.Is classification, and each code maps to a stable
// HTTP status.
func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []struct {
		sentinel error
		code     apiv1.Code
		status   int
	}{
		{tableseg.ErrBadOptions, apiv1.CodeBadOptions, http.StatusBadRequest},
		{tableseg.ErrTooFewListPages, apiv1.CodeTooFewListPages, http.StatusBadRequest},
		{tableseg.ErrNoDetailPages, apiv1.CodeNoDetailPages, http.StatusBadRequest},
		{tableseg.ErrBadTarget, apiv1.CodeBadTarget, http.StatusBadRequest},
		{tableseg.ErrNoTableSlot, apiv1.CodeNoTableSlot, http.StatusUnprocessableEntity},
		{tableseg.ErrNoDetailEvidence, apiv1.CodeNoDetailEvidence, http.StatusUnprocessableEntity},
		{tableseg.ErrCSPUnsatisfiable, apiv1.CodeCSPUnsatisfiable, http.StatusUnprocessableEntity},
		{context.Canceled, apiv1.CodeCanceled, http.StatusRequestTimeout},
		{context.DeadlineExceeded, apiv1.CodeDeadlineExceeded, http.StatusGatewayTimeout},
	}
	for _, c := range cases {
		werr := apiv1.FromError(c.sentinel)
		if werr.Code != c.code {
			t.Errorf("%v: code = %q, want %q", c.sentinel, werr.Code, c.code)
		}
		if !errors.Is(werr, c.sentinel) {
			t.Errorf("wire error %q does not unwrap to %v", werr.Code, c.sentinel)
		}
		if got := werr.Code.HTTPStatus(); got != c.status {
			t.Errorf("%q: status = %d, want %d", werr.Code, got, c.status)
		}
	}
	// Wrapped errors classify through %w chains.
	wrapped := apiv1.FromError(errTestWrap{tableseg.ErrNoDetailEvidence})
	if wrapped.Code != apiv1.CodeNoDetailEvidence {
		t.Errorf("wrapped sentinel: code = %q", wrapped.Code)
	}
	if apiv1.CodeFromError(errors.New("mystery")) != apiv1.CodeInternal {
		t.Error("unclassified error did not map to internal")
	}
	for _, c := range []apiv1.Code{apiv1.CodeRateLimited, apiv1.CodeQueueFull} {
		if c.HTTPStatus() != http.StatusTooManyRequests {
			t.Errorf("%q: status = %d, want 429", c, c.HTTPStatus())
		}
	}
	if apiv1.CodeDraining.HTTPStatus() != http.StatusServiceUnavailable {
		t.Error("draining should serve 503")
	}
}

type errTestWrap struct{ err error }

func (e errTestWrap) Error() string { return "wrap: " + e.err.Error() }
func (e errTestWrap) Unwrap() error { return e.err }

// TestWireShapes pins the stable JSON field names of the v1 envelope:
// a renamed field here is a wire-format break and belongs in api/v2.
func TestWireShapes(t *testing.T) {
	errBody, err := json.Marshal(apiv1.ErrorResponse{
		Error: &apiv1.Error{Code: apiv1.CodeQueueFull, Message: "try later", RetryAfterSeconds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := `{"error":{"code":"queue_full","message":"try later","retryAfterSeconds":2}}`
	if string(errBody) != wantErr {
		t.Errorf("error envelope:\n got %s\nwant %s", errBody, wantErr)
	}

	respBody, err := json.Marshal(apiv1.SegmentResponse{
		Method:  "probabilistic",
		Solver:  "probabilistic",
		Records: []apiv1.Record{{Record: 1, Extracts: []string{"a", "b"}, Columns: []int{0, 1}}},
		Table:   [][]string{{"a", "b"}},

		AnalyzedExtracts: 2,
		TotalExtracts:    2,
		Coalesced:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantResp := `{"method":"probabilistic","solver":"probabilistic",` +
		`"records":[{"record":1,"extracts":["a","b"],"columns":[0,1]}],` +
		`"table":[["a","b"]],"usedWholePage":false,` +
		`"analyzedExtracts":2,"totalExtracts":2,"coalesced":true}`
	if string(respBody) != wantResp {
		t.Errorf("segment response:\n got %s\nwant %s", respBody, wantResp)
	}

	reqBody, err := json.Marshal(apiv1.SegmentRequest{
		Method:      "csp",
		ListPages:   []apiv1.Page{{Name: "l1", HTML: "page one"}},
		Target:      0,
		DetailPages: []apiv1.Page{{HTML: "page two"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantReq := `{"method":"csp","listPages":[{"name":"l1","html":"page one"}],` +
		`"target":0,"detailPages":[{"html":"page two"}]}`
	if string(reqBody) != wantReq {
		t.Errorf("segment request:\n got %s\nwant %s", reqBody, wantReq)
	}
}

// TestResponseFromSegmentation runs one real segmentation and checks
// the wire response mirrors it faithfully.
func TestResponseFromSegmentation(t *testing.T) {
	p, err := sitegen.ProfileBySlug("allegheny")
	if err != nil {
		t.Fatal(err)
	}
	in := experiments.BuildInput(sitegen.Generate(p, experiments.DefaultSeed), 0)
	seg, err := tableseg.SegmentProbabilistic(in)
	if err != nil {
		t.Fatal(err)
	}
	resp := apiv1.ResponseFromSegmentation(seg, nil)
	if resp.Method != "probabilistic" {
		t.Errorf("method = %q", resp.Method)
	}
	if len(resp.Records) != len(seg.Records) {
		t.Fatalf("records = %d, want %d", len(resp.Records), len(seg.Records))
	}
	for i, rec := range resp.Records {
		if rec.Record != seg.Records[i].Index+1 {
			t.Errorf("record %d: number = %d", i, rec.Record)
		}
		if !reflect.DeepEqual(rec.Extracts, seg.Records[i].Texts()) {
			t.Errorf("record %d: extract texts differ", i)
		}
	}
	if !reflect.DeepEqual(resp.Table, tableseg.ReconstructTable(seg)) {
		t.Error("table differs from ReconstructTable")
	}
	if resp.CSPStatus != "" {
		t.Errorf("probabilistic response carries cspStatus %q", resp.CSPStatus)
	}
	if resp.AnalyzedExtracts != seg.Analyzed || resp.TotalExtracts != seg.TotalExtracts {
		t.Error("extract counters differ")
	}
}
