package apiv1_test

// The append-only contract of this package, held as a test rather than
// a doc comment: every exported wire type is pinned, field by field, in
// the committed lint/schema-apiv1.lock, and what actually marshals to
// JSON is exactly the locked tag set. The wiredrift analyzer enforces
// the same contract statically at lint time; this test enforces it
// dynamically through encoding/json, so a drift that somehow slipped
// the analyzer (a build tag, a generated file) still fails `go test`.

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	apiv1 "tableseg/api/v1"
	"tableseg/internal/analysis/schema"
)

// wireSurface is the package's exported wire types, by name. Adding an
// exported type to the package without adding it here fails
// TestWireSurfaceMatchesLock via the lock (which -update-locks
// regenerates from the real package scope), so the map cannot rot
// silently.
var wireSurface = map[string]any{
	"CacheTier":        apiv1.CacheTier{},
	"CoalesceCounters": apiv1.CoalesceCounters{},
	"Code":             apiv1.Code(""),
	"EngineCounters":   apiv1.EngineCounters{},
	"Error":            apiv1.Error{},
	"ErrorResponse":    apiv1.ErrorResponse{},
	"Metrics":          apiv1.Metrics{},
	"Page":             apiv1.Page{},
	"Record":           apiv1.Record{},
	"RequestCounters":  apiv1.RequestCounters{},
	"SegmentRequest":   apiv1.SegmentRequest{},
	"SegmentResponse":  apiv1.SegmentResponse{},
	"StageHistogram":   apiv1.StageHistogram{},
	"StageTime":        apiv1.StageTime{},
	"TaskStats":        apiv1.TaskStats{},
}

func loadWireLock(t *testing.T) *schema.Lock {
	t.Helper()
	lock, err := schema.LoadFile(filepath.Join("..", "..", "lint", "schema-apiv1.lock"))
	if err != nil {
		t.Fatalf("loading wire lock: %v", err)
	}
	if lock == nil {
		t.Fatal("lint/schema-apiv1.lock missing; regenerate with tableseglint -update-locks")
	}
	return lock
}

// TestWireSurfaceMatchesLock checks coverage in both directions and,
// for struct types, that the live field names, json tags and order
// match the locked entry exactly.
func TestWireSurfaceMatchesLock(t *testing.T) {
	lock := loadWireLock(t)
	const prefix = "tableseg/api/v1."

	locked := map[string]*schema.Entry{}
	for i := range lock.Types {
		name, ok := strings.CutPrefix(lock.Types[i].Type, prefix)
		if !ok {
			t.Errorf("lock entry %q is not an api/v1 type", lock.Types[i].Type)
			continue
		}
		locked[name] = &lock.Types[i]
	}
	for name := range locked {
		if _, ok := wireSurface[name]; !ok {
			t.Errorf("locked type %s missing from the wireSurface map — update this test", name)
		}
	}
	for name, zero := range wireSurface {
		entry, ok := locked[name]
		if !ok {
			t.Errorf("exported type %s has no lock entry; regenerate with tableseglint -update-locks", name)
			continue
		}
		rt := reflect.TypeOf(zero)
		if rt.Kind() != reflect.Struct {
			if entry.Underlying == "" {
				t.Errorf("%s: non-struct type locked without an underlying shape", name)
			}
			continue
		}
		var live []schema.Field
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if !f.IsExported() || f.Tag.Get("json") == "-" {
				continue
			}
			live = append(live, schema.Field{Name: f.Name, Tag: f.Tag.Get("json")})
		}
		if len(live) != len(entry.Fields) {
			t.Errorf("%s: %d live wire fields vs %d locked — v1 is append-only and additions must be re-locked", name, len(live), len(entry.Fields))
			continue
		}
		for i, lf := range entry.Fields {
			if live[i].Name != lf.Name || live[i].Tag != lf.Tag {
				t.Errorf("%s field %d: live %s (json %q) vs locked %s (json %q)",
					name, i, live[i].Name, live[i].Tag, lf.Name, lf.Tag)
			}
		}
	}
}

// TestWireJSONRoundTrip fills each struct type with non-zero values,
// marshals it, and asserts the emitted key set is exactly the locked
// tag set — the dynamic half of the contract: what encoding/json
// actually puts on the wire is what the lock says.
func TestWireJSONRoundTrip(t *testing.T) {
	lock := loadWireLock(t)
	for name, zero := range wireSurface {
		rt := reflect.TypeOf(zero)
		if rt.Kind() != reflect.Struct {
			continue
		}
		entry := lock.Entry("tableseg/api/v1." + name)
		if entry == nil {
			continue // reported by TestWireSurfaceMatchesLock
		}
		v := reflect.New(rt).Elem()
		fillValue(v)
		data, err := json.Marshal(v.Interface())
		if err != nil {
			t.Errorf("%s: marshal: %v", name, err)
			continue
		}
		var keys map[string]json.RawMessage
		if err := json.Unmarshal(data, &keys); err != nil {
			t.Errorf("%s: round trip: %v", name, err)
			continue
		}
		want := map[string]bool{}
		for _, f := range entry.Fields {
			want[jsonKey(f)] = true
		}
		for k := range keys {
			if !want[k] {
				t.Errorf("%s marshals unlocked key %q", name, k)
			}
		}
		for k := range want {
			if _, ok := keys[k]; !ok {
				t.Errorf("%s did not marshal locked key %q (filled value still omitted?)", name, k)
			}
		}
	}
}

// jsonKey is the key encoding/json emits for a locked field: the tag
// name before any option, or the Go name when untagged.
func jsonKey(f schema.Field) string {
	tag, _, _ := strings.Cut(f.Tag, ",")
	if tag == "" {
		return f.Name
	}
	return tag
}

// fillValue sets v to a non-zero value recursively, so omitempty
// cannot hide any field from the round trip.
func fillValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.String:
		v.SetString("x")
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		fillValue(p.Elem())
		v.Set(p)
	case reflect.Slice:
		elem := reflect.New(v.Type().Elem()).Elem()
		fillValue(elem)
		v.Set(reflect.Append(reflect.MakeSlice(v.Type(), 0, 1), elem))
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		key := reflect.New(v.Type().Key()).Elem()
		val := reflect.New(v.Type().Elem()).Elem()
		fillValue(key)
		fillValue(val)
		m.SetMapIndex(key, val)
		v.Set(m)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				fillValue(v.Field(i))
			}
		}
	}
}
