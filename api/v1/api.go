// Package apiv1 is the versioned wire format of the tablesegd
// segmentation daemon: the request, response, error and metrics DTOs
// exchanged over HTTP/JSON, with stable field names, plus the
// conversions between wire shapes and the tableseg library types. The
// server (internal/server), the Go client (internal/server/client) and
// the remote mode of cmd/tableseg all share this package, so the three
// cannot drift apart; any breaking change to the wire format belongs
// in a new version package (api/v2), never in edits to these structs.
//
// Endpoints:
//
//	POST /v1/segment  SegmentRequest -> SegmentResponse | ErrorResponse
//	GET  /healthz     "ok" (200) while serving, 503 while draining
//	GET  /varz        Metrics
//
// Failures are ErrorResponse envelopes whose Code is a stable string
// mapped from the library's sentinel errors; Error.Unwrap restores the
// matching sentinel, so errors.Is works across the wire.
package apiv1

import (
	"fmt"

	"tableseg"
)

// Version is the wire-format version implemented by this package.
const Version = "v1"

// The daemon's endpoint paths. PathSegment is versioned with the wire
// format; the health and metrics endpoints are operational surfaces
// shared across versions.
const (
	PathSegment = "/v1/segment"
	PathHealthz = "/healthz"
	PathVarz    = "/varz"
)

// Page is one HTML document of a request.
type Page struct {
	// Name identifies the page in diagnostics (a URL or file name).
	Name string `json:"name,omitempty"`
	// HTML is the raw document source.
	HTML string `json:"html"`
}

// SegmentRequest is the body of POST /v1/segment: one segmentation
// task plus optional configuration. Zero-valued configuration fields
// select the paper-reproduction defaults for the chosen method.
type SegmentRequest struct {
	// Method selects the segmentation algorithm: "csp",
	// "probabilistic" (the default when empty) or "combined".
	Method string `json:"method,omitempty"`
	// Solver, when non-empty, names a registered solver and overrides
	// Method ("exact", "greedy", "uniform", ...).
	Solver string `json:"solver,omitempty"`
	// ListPages are the site's sampled list pages (two or more enable
	// cross-page template induction).
	ListPages []Page `json:"listPages"`
	// Target is the index into ListPages of the page to segment.
	Target int `json:"target"`
	// DetailPages are the pages linked from the target list page, in
	// link (record) order.
	DetailPages []Page `json:"detailPages"`
	// TimeoutMillis bounds the segmentation; the server clamps it to
	// its configured maximum and applies its default when zero.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// WantStats asks the server to include per-stage timing in the
	// response.
	WantStats bool `json:"wantStats,omitempty"`
}

// Input converts the request's pages into a library Input.
func (r *SegmentRequest) Input() tableseg.Input {
	in := tableseg.Input{Target: r.Target}
	for _, p := range r.ListPages {
		in.ListPages = append(in.ListPages, tableseg.Page{Name: p.Name, HTML: p.HTML})
	}
	for _, p := range r.DetailPages {
		in.DetailPages = append(in.DetailPages, tableseg.Page{Name: p.Name, HTML: p.HTML})
	}
	return in
}

// Options converts the request's configuration into validated library
// Options (ErrBadOptions on an unknown method or solver).
func (r *SegmentRequest) Options() (tableseg.Options, error) {
	m, err := ParseMethod(r.Method)
	if err != nil {
		return tableseg.Options{}, err
	}
	return tableseg.NewOptions(
		tableseg.WithMethod(m),
		tableseg.WithSolver(r.Solver),
	)
}

// OptionsKey is the part of the coalescing key contributed by the
// request's configuration: two requests may share one computation only
// when both their content hash and their options fingerprint agree.
// Method spellings are normalized first, so "prob", "probabilistic"
// and the empty default coalesce together.
func (r *SegmentRequest) OptionsKey() string {
	m, err := ParseMethod(r.Method)
	if err != nil {
		// Invalid methods never reach the engine; keep their keys
		// distinct anyway.
		return "!" + r.Method + "|" + r.Solver
	}
	return m.String() + "|" + r.Solver
}

// ParseMethod maps a wire method name onto the library enum. The empty
// string selects Probabilistic — the method the daemon's record-major
// consumers want by default (column labels, reconstructed tables).
func ParseMethod(name string) (tableseg.Method, error) {
	switch name {
	case "", "prob", "probabilistic":
		return tableseg.Probabilistic, nil
	case "csp":
		return tableseg.CSP, nil
	case "combined":
		return tableseg.Combined, nil
	}
	return 0, fmt.Errorf("%w: unknown method %q (want csp, probabilistic or combined)", tableseg.ErrBadOptions, name)
}

// Record is one segmented record on the wire.
type Record struct {
	// Record is the 1-based record number (the detail page it
	// corresponds to).
	Record int `json:"record"`
	// Extracts are the record's extract texts in stream order.
	Extracts []string `json:"extracts"`
	// Columns holds, per extract, its 0-based column label, or -1 when
	// the method assigns none.
	Columns []int `json:"columns,omitempty"`
}

// SegmentResponse is the success body of POST /v1/segment.
type SegmentResponse struct {
	// Method and Solver report what actually ran.
	Method string `json:"method"`
	Solver string `json:"solver"`
	// Records are the segmented records in record order.
	Records []Record `json:"records"`
	// ColumnLabels are the mined semantic column names (index = column
	// number; empty strings where no caption was found).
	ColumnLabels []string `json:"columnLabels,omitempty"`
	// Table is the reconstructed relational view: one row per record,
	// one column per learned label.
	Table [][]string `json:"table"`
	// Diagnostics mirroring tableseg.Segmentation.
	UsedWholePage    bool   `json:"usedWholePage"`
	Vertical         bool   `json:"vertical,omitempty"`
	CSPStatus        string `json:"cspStatus,omitempty"`
	AnalyzedExtracts int    `json:"analyzedExtracts"`
	TotalExtracts    int    `json:"totalExtracts"`
	// Coalesced is true when this response was served from a shared
	// in-flight computation rather than a fresh segmentation.
	Coalesced bool `json:"coalesced,omitempty"`
	// Stats carries per-stage timing when the request asked for it.
	Stats *TaskStats `json:"stats,omitempty"`
}

// StageTime is one pipeline stage's aggregated wall time within a
// task.
type StageTime struct {
	Stage  string  `json:"stage"`
	Calls  int     `json:"calls"`
	Millis float64 `json:"millis"`
}

// TaskStats is the wire shape of the engine's per-task
// instrumentation.
type TaskStats struct {
	WallMillis       float64     `json:"wallMillis"`
	Stages           []StageTime `json:"stages,omitempty"`
	WSATRestarts     int         `json:"wsatRestarts,omitempty"`
	WSATFlips        int         `json:"wsatFlips,omitempty"`
	EMIters          int         `json:"emIters,omitempty"`
	TemplateCacheHit bool        `json:"templateCacheHit,omitempty"`
	TokenCacheHits   int         `json:"tokenCacheHits,omitempty"`
	TokenCacheMisses int         `json:"tokenCacheMisses,omitempty"`
}

// ResponseFromSegmentation builds the wire response for a completed
// segmentation. The caller supplies the method that ran; stats may be
// nil.
func ResponseFromSegmentation(seg *tableseg.Segmentation, stats *TaskStats) *SegmentResponse {
	resp := &SegmentResponse{
		Method:           seg.Method.String(),
		Solver:           seg.Solver,
		ColumnLabels:     seg.ColumnLabels,
		Table:            tableseg.ReconstructTable(seg),
		UsedWholePage:    seg.UsedWholePage,
		Vertical:         seg.Vertical,
		AnalyzedExtracts: seg.Analyzed,
		TotalExtracts:    seg.TotalExtracts,
		Stats:            stats,
	}
	if seg.Method != tableseg.Probabilistic {
		resp.CSPStatus = seg.CSPStatus.String()
	}
	for i := range seg.Records {
		rec := &seg.Records[i]
		resp.Records = append(resp.Records, Record{
			Record:   rec.Index + 1,
			Extracts: rec.Texts(),
			Columns:  rec.Columns,
		})
	}
	return resp
}

// TaskStatsFromEngine converts the engine's instrumentation record to
// its wire shape.
func TaskStatsFromEngine(st tableseg.TaskStats) *TaskStats {
	out := &TaskStats{
		WallMillis:       float64(st.Wall.Microseconds()) / 1e3,
		WSATRestarts:     st.WSATRestarts,
		WSATFlips:        st.WSATFlips,
		EMIters:          st.EMIters,
		TemplateCacheHit: st.TemplateCacheHit,
		TokenCacheHits:   st.TokenCacheHits,
		TokenCacheMisses: st.TokenCacheMisses,
	}
	for _, s := range st.Stages {
		out.Stages = append(out.Stages, StageTime{
			Stage:  s.Name,
			Calls:  s.Calls,
			Millis: float64(s.Duration.Microseconds()) / 1e3,
		})
	}
	return out
}
