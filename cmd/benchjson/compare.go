package main

// Baseline comparison: `benchjson -baseline BENCH_stages.json` diffs
// the freshly parsed report against a previously committed one and
// prints a warning for every benchmark whose ns/op grew by more than
// -tolerance percent. The comparison is advisory — microbenchmarks on
// shared CI runners jitter too much for a hard gate — so regressions
// never change the exit status; they are meant to be read, not to
// block. `make bench-check` wires this up.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// loadReport reads a report previously written by benchjson -out.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: reading baseline: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchjson: parsing baseline %s: %w", path, err)
	}
	return &r, nil
}

// compare writes one line per regressed, missing or new benchmark to w
// and returns the number of regressions beyond the tolerance.
func compare(w io.Writer, baseline, current *Report, tolerancePct float64) int {
	old := make(map[string]Record, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		old[r.Name] = r
	}
	regressions := 0
	seen := make(map[string]bool, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		seen[r.Name] = true
		prev, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: new benchmark, no baseline\n", r.Name)
			continue
		}
		if prev.NsPerOp <= 0 {
			continue
		}
		deltaPct := (r.NsPerOp - prev.NsPerOp) / prev.NsPerOp * 100
		if deltaPct > tolerancePct {
			regressions++
			fmt.Fprintf(w, "benchjson: %s: ns/op regressed %+.1f%% (%.0f -> %.0f), tolerance %.0f%%\n",
				r.Name, deltaPct, prev.NsPerOp, r.NsPerOp, tolerancePct)
		}
	}
	var gone []string
	for name := range old {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "benchjson: %s: present in baseline but not in this run\n", name)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) beyond tolerance (advisory; not failing the run)\n", regressions)
	}
	return regressions
}
