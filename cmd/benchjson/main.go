// Command benchjson converts `go test -bench` text output into a
// structured JSON report. It reads the benchmark stream on stdin,
// echoes it unchanged to stdout (so it composes as a pipeline filter
// without hiding the human-readable results), and writes the parsed
// records for every benchmark whose name matches -filter to -out:
//
//	go test -bench=. -benchmem -run '^$' . | benchjson -filter '^(Stage|Solver)' -out BENCH_stages.json
//
// Each record carries the benchmark name (stripped of the Benchmark
// prefix and -GOMAXPROCS suffix), the iteration count, ns/op and, when
// -benchmem is on, B/op and allocs/op. Custom b.ReportMetric values are
// collected under "metrics". The report is deterministic for a given
// input stream, so diffs of BENCH_stages.json across commits show stage
// regressions directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	Benchmarks []Record `json:"benchmarks"`
}

// benchLine matches a result line: name, iterations, then the measured
// value columns ("<value> <unit>" pairs).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// valueUnit matches one "<number> <unit>" column of a result line.
var valueUnit = regexp.MustCompile(`([0-9.eE+-]+)\s+(\S+)`)

func parseLine(line string) (Record, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{
		Name:       strings.TrimPrefix(m[1], "Benchmark"),
		Iterations: iters,
	}
	seen := false
	for _, vu := range valueUnit.FindAllStringSubmatch(m[3], -1) {
		v, err := strconv.ParseFloat(vu[1], 64)
		if err != nil {
			continue
		}
		switch vu[2] {
		case "ns/op":
			rec.NsPerOp = v
			seen = true
		case "B/op":
			n := int64(v)
			rec.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			rec.AllocsPerOp = &n
		default:
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[vu[2]] = v
		}
	}
	return rec, seen
}

func run(filter *regexp.Regexp, out string) (*Report, error) {
	var report Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		rec, ok := parseLine(line)
		if !ok || !filter.MatchString(rec.Name) {
			continue
		}
		report.Benchmarks = append(report.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading stdin: %w", err)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return &report, err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return &report, nil
}

func main() {
	filterFlag := flag.String("filter", "", "regexp selecting benchmark names for the report (empty = all)")
	out := flag.String("out", "-", "output file (- = stdout)")
	baselinePath := flag.String("baseline", "", "prior report to diff against (warnings only, never fails the run)")
	tolerance := flag.Float64("tolerance", 20, "ns/op growth beyond this percentage is reported as a regression")
	flag.Parse()

	filter, err := regexp.Compile(*filterFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: bad -filter:", err)
		os.Exit(2)
	}
	report, err := run(filter, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *baselinePath != "" {
		baseline, err := loadReport(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		compare(os.Stderr, baseline, report, *tolerance)
	}
}
