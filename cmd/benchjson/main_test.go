package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	i64 := func(n int64) *int64 { return &n }
	cases := []struct {
		line string
		want Record
		ok   bool
	}{
		{
			line: "BenchmarkStageTokenize-8   \t    1234\t    987654 ns/op\t  123456 B/op\t     789 allocs/op",
			want: Record{Name: "StageTokenize", Iterations: 1234, NsPerOp: 987654,
				BytesPerOp: i64(123456), AllocsPerOp: i64(789)},
			ok: true,
		},
		{
			line: "BenchmarkSolver/csp-8         100          51234 ns/op",
			want: Record{Name: "Solver/csp", Iterations: 100, NsPerOp: 51234},
			ok:   true,
		},
		{
			line: "BenchmarkEngineThroughput/engine-8  5  1.5e+08 ns/op  160.0 pages/s",
			want: Record{Name: "EngineThroughput/engine", Iterations: 5, NsPerOp: 1.5e8,
				Metrics: map[string]float64{"pages/s": 160}},
			ok: true,
		},
		{line: "goos: linux", ok: false},
		{line: "PASS", ok: false},
		{line: "BenchmarkBroken-8  notanumber  12 ns/op", ok: false},
	}
	for _, c := range cases {
		got, ok := parseLine(c.line)
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := &Report{Benchmarks: []Record{
		{Name: "StageTokenize", NsPerOp: 1000},
		{Name: "StageSegment", NsPerOp: 2000},
		{Name: "SolverRemoved", NsPerOp: 500},
	}}
	current := &Report{Benchmarks: []Record{
		{Name: "StageTokenize", NsPerOp: 1050}, // +5%: within tolerance
		{Name: "StageSegment", NsPerOp: 2600},  // +30%: regression
		{Name: "SolverAdded", NsPerOp: 100},    // new, no baseline
	}}
	var buf strings.Builder
	got := compare(&buf, baseline, current, 20)
	if got != 1 {
		t.Fatalf("compare returned %d regressions, want 1\n%s", got, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"StageSegment: ns/op regressed +30.0% (2000 -> 2600)",
		"SolverAdded: new benchmark, no baseline",
		"SolverRemoved: present in baseline but not in this run",
		"advisory",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "StageTokenize") {
		t.Errorf("within-tolerance benchmark reported:\n%s", out)
	}

	buf.Reset()
	if got := compare(&buf, baseline, baseline, 20); got != 0 || buf.Len() != 0 {
		t.Errorf("identical reports: %d regressions, output %q", got, buf.String())
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	want := &Report{Benchmarks: []Record{{Name: "StageTokenize", Iterations: 10, NsPerOp: 42}}}
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loadReport = %+v, want %+v", got, want)
	}
	if _, err := loadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loadReport on a missing file returned no error")
	}
}
