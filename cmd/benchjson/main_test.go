package main

import (
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	i64 := func(n int64) *int64 { return &n }
	cases := []struct {
		line string
		want Record
		ok   bool
	}{
		{
			line: "BenchmarkStageTokenize-8   \t    1234\t    987654 ns/op\t  123456 B/op\t     789 allocs/op",
			want: Record{Name: "StageTokenize", Iterations: 1234, NsPerOp: 987654,
				BytesPerOp: i64(123456), AllocsPerOp: i64(789)},
			ok: true,
		},
		{
			line: "BenchmarkSolver/csp-8         100          51234 ns/op",
			want: Record{Name: "Solver/csp", Iterations: 100, NsPerOp: 51234},
			ok:   true,
		},
		{
			line: "BenchmarkEngineThroughput/engine-8  5  1.5e+08 ns/op  160.0 pages/s",
			want: Record{Name: "EngineThroughput/engine", Iterations: 5, NsPerOp: 1.5e8,
				Metrics: map[string]float64{"pages/s": 160}},
			ok: true,
		},
		{line: "goos: linux", ok: false},
		{line: "PASS", ok: false},
		{line: "BenchmarkBroken-8  notanumber  12 ns/op", ok: false},
	}
	for _, c := range cases {
		got, ok := parseLine(c.line)
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}
