// Command harvest implements the paper's §3 vision end to end: point it
// at a site's sampled list pages, and it fetches every linked page,
// classifies the detail pages away from advertisements, and extracts
// the records — no manual page selection at all.
//
//	harvest -dir corpus/superpages -list /list1.html -list /list2.html
//	harvest -base http://host:port -list /list1.html -list /list2.html
//
// -dir crawls a directory written by cmd/sitegen; -base crawls a live
// HTTP server.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"tableseg/internal/core"
	"tableseg/internal/crawl"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint(*m) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var lists multiFlag
	dir := flag.String("dir", "", "crawl a directory of pages (as written by cmd/sitegen)")
	base := flag.String("base", "", "crawl a live site at this base URL")
	flag.Var(&lists, "list", "list page URL/path (repeatable; >=2 enables template finding)")
	entry := flag.String("entry", "", "single entry URL/path: discover further list pages by following Next links")
	all := flag.Bool("all", false, "with -entry: harvest every discovered list page and emit the merged relation as CSV")
	target := flag.Int("target", 0, "index of the list page to harvest")
	method := flag.String("method", "prob", "segmentation method: prob, csp or combined")
	flag.Parse()

	if (len(lists) == 0 && *entry == "") || (*dir == "") == (*base == "") {
		fmt.Fprintln(os.Stderr, "harvest: need -list pages (or -entry) and exactly one of -dir or -base")
		flag.Usage()
		os.Exit(2)
	}

	var fetcher crawl.Fetcher
	urls := make([]string, len(lists))
	if *dir != "" {
		fetcher = crawl.DirFetcher{Root: *dir}
		copy(urls, lists)
	} else {
		fetcher = crawl.HTTPFetcher{}
		for i, l := range lists {
			urls[i] = *base + l
		}
	}

	var m core.Method
	switch *method {
	case "prob", "probabilistic":
		m = core.Probabilistic
	case "csp":
		m = core.CSP
	case "combined":
		m = core.Combined
	default:
		fmt.Fprintf(os.Stderr, "harvest: unknown method %q\n", *method)
		os.Exit(2)
	}

	ctx := context.Background()
	h := &crawl.Harvester{Fetcher: fetcher, Options: core.DefaultOptions(m)}
	entryURL := *entry
	if entryURL != "" && *base != "" {
		entryURL = *base + entryURL
	}
	if *all {
		if entryURL == "" {
			fmt.Fprintln(os.Stderr, "harvest: -all requires -entry")
			os.Exit(2)
		}
		table, results, err := h.HarvestAll(ctx, entryURL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "harvest:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "harvested %d list pages into %d rows x %d columns\n",
			len(results), table.NumRows(), len(table.Columns))
		for c, sch := range table.Schema() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", table.Columns[c], sch)
		}
		w := csv.NewWriter(os.Stdout)
		_ = w.Write(table.Columns)
		for _, row := range table.Rows {
			_ = w.Write(row)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fmt.Fprintln(os.Stderr, "harvest:", err)
			os.Exit(1)
		}
		return
	}

	var res *crawl.Result
	var err error
	if entryURL != "" {
		res, err = h.HarvestFrom(ctx, entryURL)
	} else {
		res, err = h.Harvest(ctx, urls, *target)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "harvest:", err)
		os.Exit(1)
	}

	fmt.Printf("harvested %s\n", res.ListURL)
	fmt.Printf("  detail pages: %d, rejected links: %d\n", len(res.DetailURLs), len(res.RejectedURLs))
	for _, u := range res.RejectedURLs {
		fmt.Printf("  rejected: %s\n", u)
	}
	seg := res.Segmentation
	if seg.UsedWholePage {
		fmt.Println("  page template problem: entire page used")
	}
	if labels := seg.ColumnLabels; len(labels) > 0 {
		fmt.Printf("  columns: %v\n", labels)
	}
	fmt.Println()
	for _, rec := range seg.Records {
		fmt.Printf("record %2d: %v\n", rec.Index+1, rec.Texts())
	}
}
