// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic twelve-site corpus:
//
//	experiments -table 4          # the main segmentation study
//	experiments -table 1          # the Superpages worked example (also 2, 3)
//	experiments -ablations        # the DESIGN.md ablation suite
//	experiments -baselines        # layout-only baselines (§6.3)
//	experiments -seeds 42,43,44   # Table 4 totals across generator seeds
//	experiments -all              # everything (the EXPERIMENTS.md content)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tableseg/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "reproduce one table of the paper (1-4)")
	ablations := flag.Bool("ablations", false, "run the ablation suite")
	baselines := flag.Bool("baselines", false, "run the layout-only baselines")
	extensions := flag.Bool("extensions", false, "run the future-work extensions (detail-page classification, wrapper transfer)")
	scale := flag.Bool("scale", false, "run the scaling study (per-page latency vs record count)")
	timing := flag.Bool("timing", false, "report per-stage timing and cache counters over the Table 4 workload")
	seedsFlag := flag.String("seeds", "", "comma-separated generator seeds for a Table 4 sweep")
	seed := flag.Int64("seed", experiments.DefaultSeed, "generator seed")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()

	ctx := context.Background()
	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *all || *table == 1 || *table == 2 || *table == 3 {
		ex, err := experiments.RunExample(ctx)
		if err != nil {
			fail(err)
		}
		switch {
		case *all:
			fmt.Println(ex.RenderTable1())
			fmt.Println(ex.RenderTable2())
			fmt.Println(ex.RenderTable3())
		case *table == 1:
			fmt.Println(ex.RenderTable1())
		case *table == 2:
			fmt.Println(ex.RenderTable2())
		case *table == 3:
			fmt.Println(ex.RenderTable3())
		}
		ran = true
	}
	if *all || *table == 4 {
		t4, err := experiments.RunTable4(ctx, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable4(t4))
		ran = true
	}
	if *all || *ablations {
		abls, err := experiments.RunAllAblations(ctx, *seed)
		if err != nil {
			fail(err)
		}
		for _, a := range abls {
			fmt.Println(a.Render())
		}
		ran = true
	}
	if *all || *baselines {
		res, err := experiments.RunBaselines(ctx, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderBaselines(res))
		ran = true
	}
	if *all || *extensions {
		cls, err := experiments.RunClassification(ctx, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderClassification(cls))
		wr, err := experiments.RunWrapperTransfer(ctx, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderWrapperTransfer(wr))
		vt, err := experiments.RunVertical(ctx, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderVertical(vt))
		ran = true
	}
	if *all || *scale {
		rows, err := experiments.RunScale(ctx, *seed, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderScale(rows))
		stress, err := experiments.RunStressSweep(ctx, *seed, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderStressSweep(stress))
		ran = true
	}
	if *timing {
		rep, err := experiments.RunTiming(ctx, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTiming(rep))
		ran = true
	}
	if *seedsFlag != "" {
		var seeds []int64
		for _, s := range strings.Split(*seedsFlag, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fail(fmt.Errorf("bad seed %q: %w", s, err))
			}
			seeds = append(seeds, v)
		}
		prob, cspRes, err := experiments.RunSeedSweep(ctx, seeds)
		if err != nil {
			fail(err)
		}
		fmt.Println(prob.Render())
		fmt.Println(cspRes.Render())
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
