// Command tableseglint runs the repository's static-analysis suite
// (internal/analysis) over every package of the module and reports
// violations of the determinism, context-discipline, error-wrapping,
// float-equality, stage-purity and concurrency (goroutine-exit, lock
// and channel-ownership) invariants with file:line positions.
//
// Usage:
//
//	tableseglint [-root dir] [-json | -sarif] [-analyzers list] [-baseline file] [packages...]
//	tableseglint -list
//
// With no package arguments every package under the module root is
// checked (testdata, corpus and hidden directories are skipped).
// Package arguments are directories relative to the module root, e.g.
// `internal/csp`.
//
// -list prints every analyzer's name and one-line doc and exits.
// -analyzers runs only the named subset (comma-separated; unknown
// names are a usage error). -baseline replays a previous `-json` run
// and suppresses every finding already recorded there, so CI fails
// only on findings introduced since the baseline was cut.
//
// Output is plain file:line text by default; -json emits a flat JSON
// array and -sarif a SARIF 2.1.0 log for CI code-scanning upload.
// Whatever the format, diagnostics are ordered by file, line and
// column across all packages, so output is diff-stable.
//
// Exit codes: 0 when the tree is clean, 1 when findings survive, 2 on
// usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tableseg/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the whole program behind the exit code, separated so
// tests can drive flags, streams and status without a subprocess.
func realMain(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("tableseglint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	root := flags.String("root", ".", "module root directory (must contain go.mod)")
	asJSON := flags.Bool("json", false, "emit findings as a JSON array")
	asSARIF := flags.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	analyzerList := flags.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	baselinePath := flags.String("baseline", "", "JSON file from a previous -json run; findings recorded there are suppressed")
	list := flags.Bool("list", false, "print analyzer names and docs, then exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "tableseglint: -json and -sarif are mutually exclusive")
		return 2
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *analyzerList != "" {
		selected, err := selectAnalyzers(suite, *analyzerList)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		suite = selected
	}

	diags, err := run(*root, flags.Args(), suite)
	if err != nil {
		fmt.Fprintln(stderr, "tableseglint:", err)
		return 2
	}
	if *baselinePath != "" {
		baseline, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		var suppressed int
		diags, suppressed = baseline.Filter(diags)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "tableseglint: %d baseline finding(s) suppressed\n", suppressed)
		}
	}

	switch {
	case *asJSON:
		out, err := analysis.EncodeJSON(diags)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	case *asSARIF:
		out, err := analysis.EncodeSARIF(diags, suite)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(stderr, "tableseglint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated -analyzers value against
// the suite, preserving suite order.
func selectAnalyzers(suite []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	wanted := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		known := false
		for _, a := range suite {
			if a.Name == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		wanted[name] = true
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("-analyzers given but no analyzer names parsed")
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if wanted[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

func run(root string, pkgDirs []string, suite []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	modPath, err := analysis.ModulePathOf(root)
	if err != nil {
		return nil, err
	}
	if len(pkgDirs) == 0 {
		pkgDirs, err = packageDirs(root)
		if err != nil {
			return nil, err
		}
	}
	loader := analysis.NewLoader(root, modPath)
	cfg := analysis.DefaultConfig()
	var diags []analysis.Diagnostic
	for _, dir := range pkgDirs {
		pkg, err := loader.LoadDir(filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		diags = append(diags, analysis.Run(pkg, cfg, suite)...)
	}
	// Run sorts per package; re-sort across packages so the combined
	// stream is one deterministic file:line sequence.
	analysis.SortDiagnostics(diags)
	return diags, nil
}

// packageDirs lists every directory under root holding at least one
// non-test Go file, as module-root-relative paths.
func packageDirs(root string) ([]string, error) {
	skip := map[string]bool{
		".git": true, "testdata": true, "corpus": true, "results": true,
	}
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (skip[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			seen[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
