// Command tableseglint runs the repository's static-analysis suite
// (internal/analysis) over every package of the module and reports
// violations of the determinism, context-discipline, error-wrapping,
// float-equality, stage-purity, concurrency (goroutine-exit, lock and
// channel-ownership), dataflow (RNG-provenance, probability,
// aliasing), interprocedural (context-flow, lock-flow,
// handler-response), schema-lock (wire/codec drift) and escape/borrow
// (borrowed-view, pool-checkout, hot-path-allocation) invariants with
// file:line positions.
//
// Usage:
//
//	tableseglint [-root dir] [-json | -sarif] [-analyzers list] [-baseline file [-baseline-strict]] [-cache dir] [-jobs n] [-timing] [packages...]
//	tableseglint -list
//	tableseglint [-root dir] -update-locks
//	tableseglint [-root dir] -alloc-inventory [packages...]
//
// With no package arguments every package under the module root is
// checked (testdata, corpus and hidden directories are skipped).
// Package arguments are directories relative to the module root, e.g.
// `internal/csp`.
//
// The wiredrift and codecdrift analyzers lint the live tree against
// the committed schema locks (lint/schema-apiv1.lock and
// lint/schema-artifacts.lock). -update-locks is their sanctioned
// evolution path: it regenerates both locks deterministically (a
// second run is a byte-identical no-op) but refuses to launder a
// breaking change — a dropped/retyped/retagged wire field or a codec
// shape change without a version bump aborts the rewrite with exit 1.
//
// The hotalloc analyzer only runs inside the packages the committed
// lint/hotpaths.conf declares hot (no file, no findings).
// -alloc-inventory runs hotalloc alone and emits a JSON inventory of
// every allocation site by kind; it always exits 0 — the inventory is
// the advisory artifact the perf work burns down, while the ordinary
// lint run gates only findings not yet in the committed baseline.
//
// -list prints every analyzer's name and one-line doc and exits.
// -analyzers runs only the named subset (comma-separated; unknown
// names are a usage error). -baseline replays a previous `-json` run
// and suppresses every finding already recorded there, so CI fails
// only on findings introduced since the baseline was cut;
// -baseline-strict additionally fails the run when the baseline holds
// stale entries that matched nothing.
//
// The interprocedural analyzers consume whole-module call-graph
// summaries, so the driver loads packages once, builds the fact base,
// and then analyzes packages in parallel (bounded by -jobs). -cache
// names a directory holding per-package diagnostics keyed by a
// content hash of the package, its transitive module-local imports,
// go.mod and the analyzer selection; warm entries skip loading and
// analysis entirely and the merged output is byte-identical either
// way. -timing prints per-analyzer wall time per package to stderr.
//
// Output is plain file:line text by default; -json emits a flat JSON
// array and -sarif a SARIF 2.1.0 log for CI code-scanning upload.
// Whatever the format, diagnostics are ordered by file, line and
// column across all packages, so output is diff-stable.
//
// Exit codes: 0 when the tree is clean, 1 when findings survive (or
// -baseline-strict finds stale suppressions), 2 on usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"tableseg/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the whole program behind the exit code, separated so
// tests can drive flags, streams and status without a subprocess.
func realMain(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("tableseglint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	root := flags.String("root", ".", "module root directory (must contain go.mod)")
	asJSON := flags.Bool("json", false, "emit findings as a JSON array")
	asSARIF := flags.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	analyzerList := flags.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	baselinePath := flags.String("baseline", "", "JSON file from a previous -json run; findings recorded there are suppressed")
	baselineStrict := flags.Bool("baseline-strict", false, "with -baseline: fail when the baseline holds stale entries that matched nothing")
	cacheDir := flags.String("cache", "", "directory for the per-package diagnostic cache (empty: cache disabled)")
	jobs := flags.Int("jobs", runtime.NumCPU(), "maximum packages analyzed concurrently")
	timing := flags.Bool("timing", false, "print per-analyzer wall time per package to stderr")
	list := flags.Bool("list", false, "print analyzer names and docs, then exit")
	updateLocks := flags.Bool("update-locks", false, "regenerate the schema lock files from the live tree, then exit")
	allocInventory := flags.Bool("alloc-inventory", false, "emit the hotalloc allocation-site inventory as JSON and exit 0 (advisory)")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "tableseglint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *baselineStrict && *baselinePath == "" {
		fmt.Fprintln(stderr, "tableseglint: -baseline-strict requires -baseline")
		return 2
	}
	if *updateLocks {
		if *asJSON || *asSARIF || *baselinePath != "" || *analyzerList != "" || len(flags.Args()) > 0 {
			fmt.Fprintln(stderr, "tableseglint: -update-locks takes no other modes or package arguments")
			return 2
		}
		return runUpdateLocks(*root, stdout, stderr)
	}
	if *allocInventory {
		if *asJSON || *asSARIF || *baselinePath != "" || *analyzerList != "" || *list {
			fmt.Fprintln(stderr, "tableseglint: -alloc-inventory takes no other output modes or analyzer selection")
			return 2
		}
		return runAllocInventory(runConfig{
			root:     *root,
			pkgDirs:  flags.Args(),
			suite:    analysis.Suite(),
			cacheDir: *cacheDir,
			jobs:     *jobs,
			timing:   *timing,
			stderr:   stderr,
		}, stdout, stderr)
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *analyzerList != "" {
		selected, err := selectAnalyzers(suite, *analyzerList)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		suite = selected
	}

	diags, err := run(runConfig{
		root:     *root,
		pkgDirs:  flags.Args(),
		suite:    suite,
		cacheDir: *cacheDir,
		jobs:     *jobs,
		timing:   *timing,
		stderr:   stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "tableseglint:", err)
		return 2
	}
	staleBaseline := false
	if *baselinePath != "" {
		baseline, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		var suppressed int
		var stale []string
		diags, suppressed, stale = baseline.FilterStrict(diags)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "tableseglint: %d baseline finding(s) suppressed\n", suppressed)
		}
		if *baselineStrict && len(stale) > 0 {
			staleBaseline = true
			fmt.Fprintf(stderr, "tableseglint: %d stale baseline entr(ies) matched nothing; re-record the baseline:\n", len(stale))
			for _, s := range stale {
				fmt.Fprintf(stderr, "  stale: %s\n", s)
			}
		}
	}

	switch {
	case *asJSON:
		out, err := analysis.EncodeJSON(diags)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	case *asSARIF:
		out, err := analysis.EncodeSARIF(diags, suite)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(stderr, "tableseglint: %d finding(s)\n", n)
		return 1
	}
	if staleBaseline {
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated -analyzers value against
// the suite, preserving suite order.
func selectAnalyzers(suite []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	wanted := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		known := false
		for _, a := range suite {
			if a.Name == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		wanted[name] = true
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("-analyzers given but no analyzer names parsed")
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if wanted[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// runConfig carries one lint invocation's settings into run.
type runConfig struct {
	root     string
	pkgDirs  []string
	suite    []*analysis.Analyzer
	cacheDir string
	jobs     int
	timing   bool
	stderr   io.Writer
}

// pkgResult is one package's outcome, keyed for deterministic
// reporting whatever order the workers finish in.
type pkgResult struct {
	dir     string
	cached  bool
	diags   []analysis.Diagnostic
	timings []analysis.AnalyzerTiming
}

func run(rc runConfig) ([]analysis.Diagnostic, error) {
	modPath, err := analysis.ModulePathOf(rc.root)
	if err != nil {
		return nil, err
	}
	// The schema locks are analyzer inputs: load them before either the
	// cache keyer (their bytes are part of every key) or the analysis
	// pass. A corrupt lock is a usage error, not something to lint past.
	cfg := analysis.DefaultConfig()
	if err := analysis.LoadSchemaLocks(&cfg, rc.root); err != nil {
		return nil, err
	}
	// Same for the hot-path declaration: hotalloc only runs in the
	// packages lint/hotpaths.conf opts in, so its bytes are analyzer
	// input (and cache-key salt) exactly like the locks.
	if err := analysis.LoadHotPaths(&cfg, rc.root); err != nil {
		return nil, err
	}
	pkgDirs := rc.pkgDirs
	if len(pkgDirs) == 0 {
		pkgDirs, err = packageDirs(rc.root)
		if err != nil {
			return nil, err
		}
	}

	results := make(map[string]*pkgResult, len(pkgDirs))

	// Warm-cache pass: decide hit or miss from content hashes alone,
	// without loading anything.
	var keys map[string]string
	if rc.cacheDir != "" {
		keyer := newCacheKeyer(rc.root, modPath, rc.suite, []string{cfg.WireLockPath, cfg.CodecLockPath, cfg.HotPathsPath})
		keys = make(map[string]string, len(pkgDirs))
		for _, dir := range pkgDirs {
			key, err := keyer.key(dir)
			if err != nil {
				// Unkeyable (e.g. parse error): fall through to a real
				// load, which reports the error properly.
				continue
			}
			keys[dir] = key
			if diags, ok := cacheLoad(rc.cacheDir, key); ok {
				results[dir] = &pkgResult{dir: dir, cached: true, diags: diags}
			}
		}
	}

	// Load the misses (the loader pulls module-local dependencies in
	// recursively, so the fact base sees every callee) and build the
	// shared call-graph summaries.
	var missDirs []string
	for _, dir := range pkgDirs {
		if results[dir] == nil {
			missDirs = append(missDirs, dir)
		}
	}
	if len(missDirs) > 0 {
		loader := analysis.NewLoader(rc.root, modPath)
		missPkgs := make([]*analysis.Package, len(missDirs))
		for i, dir := range missDirs {
			pkg, err := loader.LoadDir(filepath.Join(rc.root, dir))
			if err != nil {
				return nil, err
			}
			missPkgs[i] = pkg
		}
		facts := analysis.BuildFacts(loader.Packages())

		// The fact base and config are read-only now; analyze packages
		// in parallel, bounded by -jobs.
		jobs := rc.jobs
		if jobs < 1 {
			jobs = 1
		}
		sem := make(chan struct{}, jobs)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i, dir := range missDirs {
			wg.Add(1)
			go func(dir string, pkg *analysis.Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				diags, timings := analysis.RunTimed(pkg, cfg, rc.suite, facts)
				mu.Lock()
				results[dir] = &pkgResult{dir: dir, diags: diags, timings: timings}
				mu.Unlock()
			}(dir, missPkgs[i])
		}
		wg.Wait()

		if rc.cacheDir != "" {
			for _, dir := range missDirs {
				if key, ok := keys[dir]; ok {
					cacheStore(rc.cacheDir, key, results[dir].diags)
				}
			}
		}
	}

	if rc.timing {
		printTimings(rc.stderr, pkgDirs, results)
	}

	// Merge and re-sort across packages so the combined stream is one
	// deterministic file:line sequence, cache hits and misses alike.
	var diags []analysis.Diagnostic
	for _, dir := range pkgDirs {
		if r := results[dir]; r != nil {
			diags = append(diags, r.diags...)
		}
	}
	analysis.SortDiagnostics(diags)
	return diags, nil
}

// printTimings writes one line per package in deterministic order:
// the package dir, then each analyzer's wall time in suite order.
func printTimings(w io.Writer, pkgDirs []string, results map[string]*pkgResult) {
	for _, dir := range pkgDirs {
		r := results[dir]
		if r == nil {
			continue
		}
		if r.cached {
			fmt.Fprintf(w, "timing %-28s (cached)\n", dir)
			continue
		}
		parts := make([]string, 0, len(r.timings))
		for _, tm := range r.timings {
			parts = append(parts, fmt.Sprintf("%s=%s", tm.Analyzer, tm.Elapsed.Round(10_000)))
		}
		fmt.Fprintf(w, "timing %-28s %s\n", dir, strings.Join(parts, " "))
	}
}

// packageDirs lists every directory under root holding at least one
// non-test Go file, as module-root-relative paths.
func packageDirs(root string) ([]string, error) {
	skip := map[string]bool{
		".git": true, "testdata": true, "corpus": true, "results": true,
	}
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (skip[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			seen[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
