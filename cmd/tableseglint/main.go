// Command tableseglint runs the repository's static-analysis suite
// (internal/analysis) over every package of the module and reports
// violations of the determinism, context-discipline, error-wrapping
// and float-equality invariants with file:line positions. It exits
// non-zero when any diagnostic survives, so `make lint` gates CI.
//
// Usage:
//
//	tableseglint [-root dir] [packages...]
//
// With no package arguments every package under the module root is
// checked (testdata, corpus and hidden directories are skipped).
// Package arguments are directories relative to the module root, e.g.
// `internal/csp`.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tableseg/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root directory (must contain go.mod)")
	flag.Parse()

	diags, err := run(*root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tableseglint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "tableseglint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func run(root string, pkgDirs []string) ([]analysis.Diagnostic, error) {
	modPath, err := analysis.ModulePathOf(root)
	if err != nil {
		return nil, err
	}
	if len(pkgDirs) == 0 {
		pkgDirs, err = packageDirs(root)
		if err != nil {
			return nil, err
		}
	}
	loader := analysis.NewLoader(root, modPath)
	cfg := analysis.DefaultConfig()
	suite := analysis.Suite()
	var diags []analysis.Diagnostic
	for _, dir := range pkgDirs {
		pkg, err := loader.LoadDir(filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		diags = append(diags, analysis.Run(pkg, cfg, suite)...)
	}
	return diags, nil
}

// packageDirs lists every directory under root holding at least one
// non-test Go file, as module-root-relative paths.
func packageDirs(root string) ([]string, error) {
	skip := map[string]bool{
		".git": true, "testdata": true, "corpus": true, "results": true,
	}
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (skip[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			seen[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
