package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureRoot is the lint fixture module shared with the analysis
// package's golden tests: it contains known findings (and the clean
// negative-control package util), so the CLI's exit codes and output
// formats can be exercised end to end without a subprocess.
var fixtureRoot = filepath.Join("..", "..", "internal", "analysis", "testdata", "lintmod")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-root", fixtureRoot, "util")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-root", fixtureRoot, "internal/csp")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "[determinism]") {
		t.Errorf("findings output missing analyzer tag:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr)
	}
}

func TestExitUsageErrorsAreTwo(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-json", "-sarif"},
		{"-root", t.TempDir()}, // no go.mod: load error
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

// TestDeterministicGlobalOrder runs the whole fixture module (several
// packages) twice and requires byte-identical, file:line-sorted text.
func TestDeterministicGlobalOrder(t *testing.T) {
	_, first, _ := runCLI(t, "-root", fixtureRoot)
	_, second, _ := runCLI(t, "-root", fixtureRoot)
	if first != second {
		t.Fatal("two runs over the same tree differ")
	}
	lineRe := regexp.MustCompile(`^(.*\.go):(\d+):(\d+): `)
	var prev string
	for _, line := range strings.Split(strings.TrimSpace(first), "\n") {
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable finding line: %q", line)
		}
		k := m[1] + "\x00" + pad(m[2]) + pad(m[3])
		if prev != "" && k < prev {
			t.Errorf("findings out of file:line order: %q after previous", line)
		}
		prev = k
	}
}

func pad(num string) string {
	return strings.Repeat("0", 8-len(num)) + num
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-root", fixtureRoot, "-json", "internal/csp")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var entries []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &entries); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(entries) == 0 {
		t.Fatal("-json output empty for a package with findings")
	}
	for _, e := range entries {
		if e.Analyzer == "" || e.File == "" || e.Line == 0 || e.Message == "" {
			t.Errorf("incomplete JSON entry: %+v", e)
		}
	}
}

func TestJSONOutputCleanIsEmptyArray(t *testing.T) {
	code, stdout, _ := runCLI(t, "-root", fixtureRoot, "-json", "util")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", strings.TrimSpace(stdout))
	}
}

func TestSARIFOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-root", fixtureRoot, "-sarif", "internal/engine")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single-run SARIF 2.1.0 log: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tableseglint" || len(run.Tool.Driver.Rules) != 20 {
		t.Errorf("driver = %q with %d rules, want tableseglint with 20", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"borrowflow", "poolsafe", "hotalloc"} {
		if !ruleIDs[want] {
			t.Errorf("SARIF rules missing %s", want)
		}
	}
	seen := map[string]bool{}
	for _, r := range run.Results {
		if r.Message.Text == "" {
			t.Error("result with empty message")
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result ruleIndex %d does not resolve to %q", r.RuleIndex, r.RuleID)
		}
		seen[r.RuleID] = true
	}
	for _, want := range []string{"goroleak", "lockdiscipline", "chancontract"} {
		if !seen[want] {
			t.Errorf("engine fixture produced no %s result", want)
		}
	}
}

func TestListPrintsAllAnalyzers(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 20 {
		t.Fatalf("-list printed %d lines, want 20:\n%s", len(lines), stdout)
	}
	for _, name := range []string{"determinism", "rngflow", "probflow", "aliasflow", "wiredrift", "codecdrift", "borrowflow", "poolsafe", "hotalloc"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}

func TestAnalyzersSubset(t *testing.T) {
	// The csp fixture carries determinism, ctxdiscipline, floateq and
	// rngflow findings; restricted to floateq only those may remain.
	code, stdout, _ := runCLI(t, "-root", fixtureRoot, "-analyzers", "floateq", "internal/csp")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if !strings.Contains(line, "[floateq]") {
			t.Errorf("non-floateq finding leaked through -analyzers: %q", line)
		}
	}
}

func TestAnalyzersUnknownIsUsageError(t *testing.T) {
	code, _, stderr := runCLI(t, "-root", fixtureRoot, "-analyzers", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr)
	}
}

// TestBaselineSuppression records the csp fixture's findings as a
// baseline, replays the run against it (everything suppressed, exit
// 0), then checks a truncated baseline lets the remainder through.
func TestBaselineSuppression(t *testing.T) {
	_, recorded, _ := runCLI(t, "-root", fixtureRoot, "-json", "internal/csp")
	dir := t.TempDir()
	full := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(full, []byte(recorded), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runCLI(t, "-root", fixtureRoot, "-baseline", full, "internal/csp")
	if code != 0 {
		t.Fatalf("fully baselined run: exit = %d, want 0 (stdout: %s)", code, stdout)
	}
	if !strings.Contains(stderr, "baseline finding(s) suppressed") {
		t.Errorf("stderr missing suppression note: %s", stderr)
	}

	// Drop one entry: exactly one finding must survive.
	var entries []json.RawMessage
	if err := json.Unmarshal([]byte(recorded), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("csp fixture recorded only %d finding(s)", len(entries))
	}
	truncated, err := json.Marshal(entries[1:])
	if err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(partial, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-root", fixtureRoot, "-baseline", partial, "internal/csp")
	if code != 1 {
		t.Fatalf("partially baselined run: exit = %d, want 1", code)
	}
	if got := len(strings.Split(strings.TrimSpace(stdout), "\n")); got != 1 {
		t.Errorf("partially baselined run printed %d finding(s), want 1:\n%s", got, stdout)
	}
}

func TestBaselineUnreadableIsUsageError(t *testing.T) {
	code, _, _ := runCLI(t, "-root", fixtureRoot, "-baseline", filepath.Join(t.TempDir(), "missing.json"), "internal/csp")
	if code != 2 {
		t.Errorf("missing baseline file: exit = %d, want 2", code)
	}
}

// TestCacheWarmColdIdentical pins the acceptance contract of the
// diagnostic cache: a cold run that fills the cache, a warm run served
// from it, and an uncached run must produce byte-identical JSON.
func TestCacheWarmColdIdentical(t *testing.T) {
	cache := t.TempDir()
	codeCold, outCold, _ := runCLI(t, "-root", fixtureRoot, "-json", "-cache", cache)
	entries, err := os.ReadDir(cache)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold run left no cache entries (err=%v)", err)
	}
	codeWarm, outWarm, stderrWarm := runCLI(t, "-root", fixtureRoot, "-json", "-cache", cache, "-timing")
	codeOff, outOff, _ := runCLI(t, "-root", fixtureRoot, "-json")
	if codeCold != codeWarm || codeWarm != codeOff {
		t.Fatalf("exit codes differ: cold=%d warm=%d uncached=%d", codeCold, codeWarm, codeOff)
	}
	if outCold != outWarm {
		t.Error("warm-cache output differs from cold-cache output")
	}
	if outCold != outOff {
		t.Error("cached output differs from uncached output")
	}
	if !strings.Contains(stderrWarm, "(cached)") {
		t.Errorf("warm -timing run reported no cache hits:\n%s", stderrWarm)
	}
}

// copyFixtureTree copies the fixture module into a temp dir so edits
// do not touch the shared testdata tree.
func copyFixtureTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	if err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureRoot, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(root, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	return root
}

// TestCacheInvalidatedByDependencyEdit checks the Merkle keying: an
// edit to a package re-keys its importers, not just itself.
func TestCacheInvalidatedByDependencyEdit(t *testing.T) {
	root := copyFixtureTree(t)
	cache := t.TempDir()
	runCLI(t, "-root", root, "-json", "-cache", cache)
	before, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	// Append a comment to a leaf package: its key and every importer's
	// key must change, producing new cache entries.
	target := filepath.Join(root, "internal", "core", "fixture.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, "-root", root, "-json", "-cache", cache)
	after, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Errorf("dependency edit added no cache entries: before=%d after=%d", len(before), len(after))
	}
}

// TestTimingOutput checks -timing prints one line per package with
// per-analyzer durations.
func TestTimingOutput(t *testing.T) {
	_, _, stderr := runCLI(t, "-root", fixtureRoot, "-timing", "util")
	if !strings.Contains(stderr, "timing util") {
		t.Fatalf("-timing printed no line for util:\n%s", stderr)
	}
	for _, name := range []string{"determinism=", "ctxflow=", "httpresp="} {
		if !strings.Contains(stderr, name) {
			t.Errorf("-timing line missing %s:\n%s", name, stderr)
		}
	}
}

// TestBaselineStrict: a fully matching baseline passes, a stale entry
// fails the run (exit 1) with the entry listed, and the flag without
// -baseline is a usage error.
func TestBaselineStrict(t *testing.T) {
	_, recorded, _ := runCLI(t, "-root", fixtureRoot, "-json", "internal/csp")
	dir := t.TempDir()

	exact := filepath.Join(dir, "exact.json")
	if err := os.WriteFile(exact, []byte(recorded), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-root", fixtureRoot, "-baseline", exact, "-baseline-strict", "internal/csp")
	if code != 0 {
		t.Fatalf("exact baseline with -baseline-strict: exit = %d, want 0 (stderr: %s)", code, stderr)
	}

	var entries []map[string]any
	if err := json.Unmarshal([]byte(recorded), &entries); err != nil {
		t.Fatal(err)
	}
	entries = append(entries, map[string]any{
		"analyzer": "floateq",
		"file":     "internal/csp/fixture.go",
		"line":     1,
		"column":   1,
		"message":  "a finding that no longer occurs",
	})
	staleData, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(stale, staleData, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-root", fixtureRoot, "-baseline", stale, "-baseline-strict", "internal/csp")
	if code != 1 {
		t.Fatalf("stale baseline with -baseline-strict: exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "stale:") || !strings.Contains(stderr, "no longer occurs") {
		t.Errorf("stderr does not list the stale entry:\n%s", stderr)
	}
	// Without -baseline-strict the stale entry is tolerated.
	code, _, _ = runCLI(t, "-root", fixtureRoot, "-baseline", stale, "internal/csp")
	if code != 0 {
		t.Fatalf("stale baseline without strict: exit = %d, want 0", code)
	}

	if code, _, _ := runCLI(t, "-baseline-strict"); code != 2 {
		t.Errorf("-baseline-strict without -baseline: exit = %d, want 2", code)
	}
}

// TestAllocInventory pins the advisory artifact: -alloc-inventory over
// the fixture module exits 0 despite findings, the JSON carries every
// allocation kind the token fixture exercises, byKind totals agree,
// and two runs are byte-identical.
func TestAllocInventory(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-root", fixtureRoot, "-alloc-inventory")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (advisory) (stderr: %s)", code, stderr)
	}
	var inv struct {
		Schema string         `json:"schema"`
		Total  int            `json:"total"`
		ByKind map[string]int `json:"byKind"`
		Sites  []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Kind string `json:"kind"`
		} `json:"sites"`
	}
	if err := json.Unmarshal([]byte(stdout), &inv); err != nil {
		t.Fatalf("-alloc-inventory output is not valid JSON: %v\n%s", err, stdout)
	}
	if inv.Schema != "tableseglint-alloc-inventory-v1" {
		t.Errorf("schema = %q", inv.Schema)
	}
	if inv.Total != len(inv.Sites) {
		t.Errorf("total = %d but %d sites listed", inv.Total, len(inv.Sites))
	}
	sum := 0
	for _, n := range inv.ByKind {
		sum += n
	}
	if sum != inv.Total {
		t.Errorf("byKind sums to %d, total is %d", sum, inv.Total)
	}
	for _, kind := range []string{"string-conv", "bytes-conv", "sprintf", "append-loop", "iface-box"} {
		if inv.ByKind[kind] == 0 {
			t.Errorf("inventory missing kind %q (byKind: %v)", kind, inv.ByKind)
		}
	}
	for _, s := range inv.Sites {
		if !strings.Contains(s.File, "internal/token") {
			t.Errorf("site outside the declared hot path: %+v", s)
		}
	}
	_, again, _ := runCLI(t, "-root", fixtureRoot, "-alloc-inventory")
	if stdout != again {
		t.Error("two -alloc-inventory runs differ")
	}
}

// TestAllocInventoryModeConflicts: the inventory is its own output
// mode and cannot be combined with the others.
func TestAllocInventoryModeConflicts(t *testing.T) {
	for _, extra := range [][]string{{"-json"}, {"-sarif"}, {"-analyzers", "hotalloc"}} {
		args := append([]string{"-root", fixtureRoot, "-alloc-inventory"}, extra...)
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("-alloc-inventory with %v: exit = %d, want 2", extra, code)
		}
	}
}

// TestCacheInvalidatedByHotPathsEdit checks the v3 key salt: editing
// lint/hotpaths.conf re-keys every package, exactly like a schema-lock
// edit does.
func TestCacheInvalidatedByHotPathsEdit(t *testing.T) {
	root := copyFixtureTree(t)
	cache := t.TempDir()
	runCLI(t, "-root", root, "-json", "-cache", cache)
	before, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	conf := filepath.Join(root, "lint", "hotpaths.conf")
	data, err := os.ReadFile(conf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(conf, append(data, []byte("# touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, "-root", root, "-json", "-cache", cache)
	after, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Errorf("hotpaths.conf edit added no cache entries: before=%d after=%d", len(before), len(after))
	}
}
