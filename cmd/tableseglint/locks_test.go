package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixtureModule clones the lint fixture module into a temp dir so
// lock-workflow tests can delete, corrupt or regenerate the committed
// locks without touching the shared testdata tree.
func copyFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	if err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureRoot, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(root, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	return root
}

// TestUpdateLocksBootstrapAndIdempotent: with no locks on disk,
// -update-locks bootstraps both from the live tree; a second run is a
// byte-identical no-op; and the regenerated locks describe the tree
// they were cut from, so the wire package lints clean against them.
func TestUpdateLocksBootstrapAndIdempotent(t *testing.T) {
	root := copyFixtureModule(t)
	for _, lock := range []string{"schema-apiv1.lock", "schema-artifacts.lock"} {
		if err := os.Remove(filepath.Join(root, "lint", lock)); err != nil {
			t.Fatal(err)
		}
	}

	code, stdout, stderr := runCLI(t, "-root", root, "-update-locks")
	if code != 0 {
		t.Fatalf("bootstrap: exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if strings.Count(stdout, "wrote") != 2 {
		t.Fatalf("bootstrap did not report writing both locks:\n%s", stdout)
	}
	first := map[string][]byte{}
	for _, lock := range []string{"schema-apiv1.lock", "schema-artifacts.lock"} {
		data, err := os.ReadFile(filepath.Join(root, "lint", lock))
		if err != nil {
			t.Fatalf("bootstrap left no %s: %v", lock, err)
		}
		first[lock] = data
	}

	code, stdout, stderr = runCLI(t, "-root", root, "-update-locks")
	if code != 0 {
		t.Fatalf("second run: exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if strings.Count(stdout, "unchanged") != 2 || strings.Contains(stdout, "wrote") {
		t.Fatalf("second run was not a no-op:\n%s", stdout)
	}
	for lock, before := range first {
		after, err := os.ReadFile(filepath.Join(root, "lint", lock))
		if err != nil {
			t.Fatal(err)
		}
		if string(after) != string(before) {
			t.Errorf("%s changed on the no-op run", lock)
		}
	}

	// The fixture's planted wiredrift findings exist only relative to
	// the shipped (deliberately drifted) locks; against locks cut from
	// the live tree the wire package is clean.
	code, stdout, stderr = runCLI(t, "-root", root, "api/v1")
	if code != 0 {
		t.Errorf("api/v1 against regenerated locks: exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// TestUpdateLocksRefusesBreakingRewrite: the shipped fixture locks
// disagree breakingly with the live tree (that is what the golden
// fixtures test), so regenerating them must be refused with each break
// named — -update-locks is for additions and bumped versions, not for
// laundering breaks.
func TestUpdateLocksRefusesBreakingRewrite(t *testing.T) {
	code, _, stderr := runCLI(t, "-root", fixtureRoot, "-update-locks")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "refusing to update locks") {
		t.Errorf("stderr missing refusal banner:\n%s", stderr)
	}
	for _, want := range []string{
		"field lintfixture/api/v1.Removed.Gone",
		"json tag of lintfixture/api/v1.Retagged.Name",
		"type of lintfixture/api/v1.Retyped.Count",
		"underlying type of lintfixture/api/v1.Level",
		"wire type lintfixture/api/v1.Vanished would be dropped",
		"shape of codec-encoded lintfixture/internal/stage.Record changed without bumping",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("refusal does not name the break %q:\n%s", want, stderr)
		}
	}
	// A refused run must not have touched the locks.
	data, err := os.ReadFile(filepath.Join(fixtureRoot, "lint", "schema-apiv1.lock"))
	if err != nil || !strings.Contains(string(data), "lintfixture/api/v1.Vanished") {
		t.Errorf("refused run rewrote the wire lock (err=%v)", err)
	}
}

// TestCorruptLockIsUsageError: a truncated lock is an exit-2 usage
// error — never a panic, never a silent skip — for both a normal lint
// run and -update-locks.
func TestCorruptLockIsUsageError(t *testing.T) {
	root := copyFixtureModule(t)
	lockPath := filepath.Join(root, "lint", "schema-apiv1.lock")
	if err := os.WriteFile(lockPath, []byte(`{"schema": "tableseg-sch`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-root", root, "api/v1")
	if code != 2 {
		t.Errorf("lint with corrupt lock: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "schema-apiv1.lock") {
		t.Errorf("error does not name the corrupt file:\n%s", stderr)
	}
	code, _, stderr = runCLI(t, "-root", root, "-update-locks")
	if code != 2 {
		t.Errorf("-update-locks with corrupt lock: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
}

// TestCodecDriftClearedByVersionBump is the acceptance scenario end to
// end: the fixture stage package drifts against the artifact lock and
// codecdrift fires; bumping the bound version constant — with no lock
// edit — clears it.
func TestCodecDriftClearedByVersionBump(t *testing.T) {
	root := copyFixtureModule(t)
	code, stdout, _ := runCLI(t, "-root", root, "internal/stage")
	if code != 1 || !strings.Contains(stdout, "[codecdrift]") {
		t.Fatalf("drifted stage fixture: exit = %d, stdout:\n%s", code, stdout)
	}

	target := filepath.Join(root, "internal", "stage", "fixture.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(string(data), "const CodecVersion = 1", "const CodecVersion = 2", 1)
	if bumped == string(data) {
		t.Fatal("fixture does not declare const CodecVersion = 1")
	}
	if err := os.WriteFile(target, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stdout, _ = runCLI(t, "-root", root, "internal/stage")
	if strings.Contains(stdout, "[codecdrift]") {
		t.Errorf("codecdrift still fires after the version bump:\n%s", stdout)
	}
}

// TestUpdateLocksExcludesOtherModes: -update-locks is its own mode.
func TestUpdateLocksExcludesOtherModes(t *testing.T) {
	for _, args := range [][]string{
		{"-update-locks", "-json"},
		{"-update-locks", "-sarif"},
		{"-update-locks", "-baseline", "x.json"},
		{"-update-locks", "-analyzers", "wiredrift"},
		{"-update-locks", "api/v1"},
	} {
		if code, _, _ := runCLI(t, append([]string{"-root", fixtureRoot}, args...)...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}
