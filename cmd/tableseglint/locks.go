package main

// -update-locks: the sanctioned evolution path for the two schema
// locks. It recomputes the wire-surface entries (every exported
// api/v1 type, field by field) and the artifact-shape entries (each
// codec-encoded struct's digest at its version constant's current
// value) and rewrites lint/schema-apiv1.lock and
// lint/schema-artifacts.lock deterministically — a second run is a
// byte-identical no-op, which the CI lock-drift gate exploits
// (`tableseglint -update-locks && git diff --exit-code lint/`).
//
// Regeneration must not become a laundering channel for the very
// drift the analyzers exist to catch, so it refuses to rewrite a
// contract breakingly: dropping, retyping or retagging a locked wire
// field (or losing a locked wire type) is an error listing each
// break, and so is re-digesting a codec struct whose bound version
// constant was not bumped. Pure wire additions and properly bumped
// codec shapes go through.

import (
	"bytes"
	"fmt"
	"go/constant"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"tableseg/internal/analysis"
	"tableseg/internal/analysis/schema"
)

// runUpdateLocks is the whole -update-locks mode behind the exit
// code: 0 written/unchanged, 1 refused (breaking rewrite), 2 on load
// or corrupt-lock errors.
func runUpdateLocks(root string, stdout, stderr io.Writer) int {
	modPath, err := analysis.ModulePathOf(root)
	if err != nil {
		fmt.Fprintln(stderr, "tableseglint:", err)
		return 2
	}
	cfg := analysis.DefaultConfig()
	loader := analysis.NewLoader(root, modPath)

	wire, err := buildWireLock(loader, root, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "tableseglint:", err)
		return 2
	}
	codec, err := buildCodecLock(loader, root, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "tableseglint:", err)
		return 2
	}

	var breaks []string
	for _, l := range []struct {
		path string
		old  func(*schema.Lock, *schema.Lock) []string
		lock *schema.Lock
	}{
		{cfg.WireLockPath, wireBreaks, wire},
		{cfg.CodecLockPath, codecBreaks, codec},
	} {
		old, err := schema.LoadFile(filepath.Join(root, filepath.FromSlash(l.path)))
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		if old != nil {
			breaks = append(breaks, l.old(old, l.lock)...)
		}
	}
	if len(breaks) > 0 {
		fmt.Fprintln(stderr, "tableseglint: refusing to update locks — the rewrite would erase a contract the analyzers enforce:")
		for _, b := range breaks {
			fmt.Fprintln(stderr, "  breaking:", b)
		}
		fmt.Fprintln(stderr, "tableseglint: restore the shape (or start api/v2 / bump the codec version) and rerun")
		return 1
	}

	for _, l := range []struct {
		path string
		lock *schema.Lock
	}{
		{cfg.WireLockPath, wire},
		{cfg.CodecLockPath, codec},
	} {
		changed, err := writeLock(filepath.Join(root, filepath.FromSlash(l.path)), l.lock)
		if err != nil {
			fmt.Fprintln(stderr, "tableseglint:", err)
			return 2
		}
		if changed {
			fmt.Fprintln(stdout, "wrote", l.path)
		} else {
			fmt.Fprintln(stdout, l.path, "unchanged")
		}
	}
	return 0
}

// buildWireLock fingerprints every exported type of the wire package.
func buildWireLock(loader *analysis.Loader, root string, cfg analysis.Config) (*schema.Lock, error) {
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(cfg.WirePkg)))
	if err != nil {
		return nil, fmt.Errorf("loading wire package %s: %w", cfg.WirePkg, err)
	}
	lock := &schema.Lock{Schema: schema.LockSchema}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !obj.Exported() {
			continue
		}
		lock.Types = append(lock.Types, schema.WireEntryOf(obj))
	}
	return lock, nil
}

// buildCodecLock fingerprints every bound codec struct at its version
// constant's current value.
func buildCodecLock(loader *analysis.Loader, root string, cfg analysis.Config) (*schema.Lock, error) {
	lock := &schema.Lock{Schema: schema.LockSchema}
	for _, b := range cfg.SchemaBindings {
		pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(b.ConstPkg)))
		if err != nil {
			return nil, fmt.Errorf("loading %s for %s: %w", b.ConstPkg, b.ConstName, err)
		}
		constObj, ok := pkg.Types.Scope().Lookup(b.ConstName).(*types.Const)
		if !ok {
			return nil, fmt.Errorf("version constant %s not found in %s", b.ConstName, b.ConstPkg)
		}
		version, exact := constant.Int64Val(constant.ToInt(constObj.Val()))
		if !exact {
			return nil, fmt.Errorf("version constant %s.%s is not an integer", b.ConstPkg, b.ConstName)
		}
		typeObj := boundType(pkg.Types, b)
		if typeObj == nil {
			// The const package no longer reaches the type: there is no
			// codec for it, so there is nothing to lock (mirrors the
			// analyzer's skip).
			continue
		}
		lock.Types = append(lock.Types, schema.CodecEntryOf(typeObj, b.ConstPkg+"."+b.ConstName, version, b.OmitFields))
	}
	return lock, nil
}

// boundType resolves a binding's struct from the const package's own
// scope or transitively through its imports.
func boundType(pkg *types.Package, b analysis.SchemaBinding) *types.TypeName {
	lookupIn := func(p *types.Package) *types.TypeName {
		obj, _ := p.Scope().Lookup(b.TypeName).(*types.TypeName)
		return obj
	}
	if pathMatchesSuffix(pkg.Path(), b.TypePkg) {
		return lookupIn(pkg)
	}
	var walk func(p *types.Package, seen map[string]bool) *types.Package
	walk = func(p *types.Package, seen map[string]bool) *types.Package {
		for _, imp := range p.Imports() {
			if seen[imp.Path()] {
				continue
			}
			seen[imp.Path()] = true
			if pathMatchesSuffix(imp.Path(), b.TypePkg) {
				return imp
			}
			if found := walk(imp, seen); found != nil {
				return found
			}
		}
		return nil
	}
	if p := walk(pkg, map[string]bool{}); p != nil {
		return lookupIn(p)
	}
	return nil
}

// pathMatchesSuffix mirrors the analysis package's suffix matching:
// a whole trailing path-segment sequence.
func pathMatchesSuffix(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return len(pkgPath) > len(suffix) && pkgPath[len(pkgPath)-len(suffix)-1] == '/' &&
		pkgPath[len(pkgPath)-len(suffix):] == suffix
}

// wireBreaks lists the contract erasures a wire-lock rewrite would
// commit: lost types, lost/retyped/retagged fields, changed
// underlying types. Additions are not breaks.
func wireBreaks(old, new *schema.Lock) []string {
	var out []string
	for _, oe := range old.Types {
		ne := new.Entry(oe.Type)
		if ne == nil {
			out = append(out, fmt.Sprintf("wire type %s would be dropped from the lock", oe.Type))
			continue
		}
		if oe.Underlying != "" && ne.Underlying != oe.Underlying {
			out = append(out, fmt.Sprintf("underlying type of %s would change %s -> %s", oe.Type, oe.Underlying, ne.Underlying))
		}
		newFields := map[string]schema.Field{}
		for _, f := range ne.Fields {
			newFields[f.Name] = f
		}
		for _, of := range oe.Fields {
			nf, ok := newFields[of.Name]
			if !ok {
				out = append(out, fmt.Sprintf("field %s.%s (json %q) would be dropped", oe.Type, of.Name, of.Tag))
				continue
			}
			if nf.Tag != of.Tag {
				out = append(out, fmt.Sprintf("json tag of %s.%s would change %q -> %q", oe.Type, of.Name, of.Tag, nf.Tag))
			}
			if nf.Type != of.Type {
				out = append(out, fmt.Sprintf("type of %s.%s would change %s -> %s", oe.Type, of.Name, of.Type, nf.Type))
			}
		}
	}
	return out
}

// codecBreaks lists unbumped shape changes a codec-lock rewrite would
// silently bless.
func codecBreaks(old, new *schema.Lock) []string {
	var out []string
	for _, oe := range old.Types {
		ne := new.Entry(oe.Type)
		if ne == nil {
			continue // binding retired: nothing left to drift
		}
		if ne.Digest != oe.Digest && ne.Version == oe.Version {
			out = append(out, fmt.Sprintf("shape of codec-encoded %s changed without bumping %s (still %d)", oe.Type, oe.Const, oe.Version))
		}
	}
	return out
}

// writeLock writes the lock atomically iff its encoding differs from
// what is on disk, reporting whether it wrote.
func writeLock(path string, lock *schema.Lock) (bool, error) {
	data, err := lock.Encode()
	if err != nil {
		return false, err
	}
	if existing, err := os.ReadFile(path); err == nil && bytes.Equal(existing, data) {
		return false, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return false, fmt.Errorf("writing %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return false, fmt.Errorf("writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return false, fmt.Errorf("writing %s: %w", path, err)
	}
	return true, nil
}
