package main

// The allocation-site inventory behind -alloc-inventory: an advisory
// JSON artifact (exit 0 regardless of findings) that CI uploads so the
// perf work can watch the declared hot paths' allocation count burn
// down without making every existing site a gate. The gate is the
// ordinary lint run, where hotalloc findings are suppressed by the
// committed baseline and only *new* sites fail.

import (
	"encoding/json"
	"fmt"
	"io"

	"tableseg/internal/analysis"
)

// allocInventorySchema versions the artifact for downstream tooling.
const allocInventorySchema = "tableseglint-alloc-inventory-v1"

// allocSite is one hotalloc finding in the inventory.
type allocSite struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// allocInventory is the artifact document.
type allocInventory struct {
	Schema string         `json:"schema"`
	Total  int            `json:"total"`
	ByKind map[string]int `json:"byKind"`
	Sites  []allocSite    `json:"sites"`
}

// buildAllocInventory buckets hotalloc diagnostics by allocation kind.
// The input is already position-sorted, so the artifact is diff-stable;
// JSON object keys marshal sorted, so byKind is too.
func buildAllocInventory(diags []analysis.Diagnostic) allocInventory {
	inv := allocInventory{
		Schema: allocInventorySchema,
		ByKind: map[string]int{},
		Sites:  []allocSite{},
	}
	for _, d := range diags {
		if d.Analyzer != "hotalloc" {
			continue
		}
		kind := analysis.HotAllocKind(d.Message)
		if kind == "" {
			kind = "other"
		}
		inv.ByKind[kind]++
		inv.Total++
		inv.Sites = append(inv.Sites, allocSite{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Kind:    kind,
			Message: d.Message,
		})
	}
	return inv
}

// runAllocInventory is the -alloc-inventory mode: run only hotalloc
// and emit the inventory JSON. Always exit 0 on success — the artifact
// is an observability surface, not a gate.
func runAllocInventory(rc runConfig, stdout, stderr io.Writer) int {
	var hotOnly []*analysis.Analyzer
	for _, a := range rc.suite {
		if a.Name == "hotalloc" {
			hotOnly = append(hotOnly, a)
		}
	}
	rc.suite = hotOnly
	diags, err := run(rc)
	if err != nil {
		fmt.Fprintln(stderr, "tableseglint:", err)
		return 2
	}
	out, err := json.MarshalIndent(buildAllocInventory(diags), "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "tableseglint:", err)
		return 2
	}
	fmt.Fprintln(stdout, string(out))
	return 0
}
