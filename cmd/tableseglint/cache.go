package main

// The on-disk diagnostic cache. A package's post-suppression
// diagnostics are a pure function of (its sources, the sources of its
// transitive module-local dependencies, go.mod, the analyzer
// selection, the lint code itself) — the interprocedural summaries
// reach exactly as far as the import graph does. The cache key is a
// Merkle hash over those inputs, computed from an ImportsOnly parse,
// so a warm run decides hit-or-miss without type-checking anything;
// any edit to a package re-keys it and every package that imports it.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tableseg/internal/analysis"
)

// cacheSchema invalidates every entry when the cache layout or the
// analyzers' semantics change; bump it alongside analyzer releases.
// v2: schema-lock bytes joined the key salt (wiredrift/codecdrift
// findings depend on the committed locks, not just the sources).
// v3: the escape/borrow layer landed (borrowflow/poolsafe/hotalloc)
// and lint/hotpaths.conf joined the key salt the same way the schema
// locks did — editing the hot-path declaration re-keys every package.
const cacheSchema = "tableseglint-cache-v3"

// cacheKeyer computes content keys for package directories.
type cacheKeyer struct {
	root    string
	modPath string
	// salt folds the schema version, the module's go.mod, the analyzer
	// selection and the schema-lock files into every key.
	salt string
	keys map[string]string // dir (module-relative) -> hex key
	busy map[string]bool   // cycle guard
}

func newCacheKeyer(root, modPath string, suite []*analysis.Analyzer, lockPaths []string) *cacheKeyer {
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema)
	fmt.Fprintln(h, filepath.Clean(root))
	names := make([]string, 0, len(suite))
	for _, a := range suite {
		names = append(names, a.Name)
	}
	fmt.Fprintln(h, strings.Join(names, ","))
	if gomod, err := os.ReadFile(filepath.Join(root, "go.mod")); err == nil {
		h.Write(gomod)
	}
	// The schema locks are analyzer inputs exactly like sources:
	// regenerating one must re-key every package, and a missing lock
	// (analyzer disabled) must key differently from any present one.
	for _, p := range lockPaths {
		data, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(p)))
		fmt.Fprintln(h, p, err == nil, len(data))
		h.Write(data)
	}
	return &cacheKeyer{
		root:    root,
		modPath: modPath,
		salt:    hex.EncodeToString(h.Sum(nil)),
		keys:    map[string]string{},
		busy:    map[string]bool{},
	}
}

// key returns the cache key of the package in the module-relative dir.
func (c *cacheKeyer) key(dir string) (string, error) {
	if k, ok := c.keys[dir]; ok {
		return k, nil
	}
	if c.busy[dir] {
		return "", fmt.Errorf("import cycle through %s", dir)
	}
	c.busy[dir] = true
	defer delete(c.busy, dir)

	files, imports, err := c.scan(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintln(h, c.salt)
	fmt.Fprintln(h, dir)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, filepath.Base(f), len(data))
		h.Write(data)
	}
	// Recurse into module-local deps; sorted import order keeps the
	// hash deterministic.
	for _, imp := range imports {
		depKey, err := c.key(imp)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, imp, depKey)
	}
	k := hex.EncodeToString(h.Sum(nil))
	c.keys[dir] = k
	return k, nil
}

// scan lists the package's non-test Go files (sorted) and the
// module-relative directories of its module-local imports (sorted,
// deduplicated), via an ImportsOnly parse — no type-checking.
func (c *cacheKeyer) scan(dir string) (files, imports []string, err error) {
	abs := filepath.Join(c.root, dir)
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, nil, err
	}
	depSet := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(abs, name)
		files = append(files, path)
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == c.modPath {
				depSet["."] = true
			} else if rest, ok := strings.CutPrefix(p, c.modPath+"/"); ok {
				depSet[rest] = true
			}
		}
	}
	sort.Strings(files)
	delete(depSet, dir) // self-import cannot happen, but stay safe
	for d := range depSet {
		imports = append(imports, d)
	}
	sort.Strings(imports)
	return files, imports, nil
}

// cacheLoad reads the cached diagnostics for key, reporting ok=false
// on any miss, read error or decode error.
func cacheLoad(cacheDir, key string) ([]analysis.Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return nil, false
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false
	}
	return diags, true
}

// cacheStore writes the diagnostics for key; failures are silently
// ignored (the cache is an optimization, never a correctness input).
func cacheStore(cacheDir, key string, diags []analysis.Diagnostic) {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(diags)
	if err != nil {
		return
	}
	tmp := filepath.Join(cacheDir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(cacheDir, key+".json"))
}
