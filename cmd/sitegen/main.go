// Command sitegen renders the synthetic twelve-site corpus (or one
// site) to disk, so the pipeline can be exercised on files:
//
//	sitegen -out ./corpus             # all twelve sites
//	sitegen -site superpages -out .   # one site (Figure 1's namesake)
//	sitegen -list                     # list available site profiles
//
// Each site becomes a directory with listN.html, listN_detailM.html and
// a truth file listN.truth.txt holding the ground-truth record values.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tableseg/internal/sitegen"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	site := flag.String("site", "", "generate a single site by slug (default: all)")
	seed := flag.Int64("seed", 42, "generator seed")
	list := flag.Bool("list", false, "list available site profiles")
	flag.Parse()

	if *list {
		for _, p := range sitegen.Profiles() {
			fmt.Printf("%-14s %-22s %-12s %-10s records=%v notes=%s\n",
				p.Slug, p.Name, p.Domain, p.Layout, p.RecordsPerList, p.Notes)
		}
		return
	}

	profiles := sitegen.Profiles()
	if *site != "" {
		p, err := sitegen.ProfileBySlug(*site)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sitegen:", err)
			os.Exit(1)
		}
		profiles = []sitegen.Profile{p}
	}

	for _, p := range profiles {
		s := sitegen.Generate(p, *seed)
		dir := filepath.Join(*out, p.Slug)
		if err := writeSite(dir, s); err != nil {
			fmt.Fprintln(os.Stderr, "sitegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d list pages)\n", dir, len(s.Lists))
	}
}

func writeSite(dir string, s *sitegen.Site) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// The site map's URL scheme matches the in-page hrefs, so the
	// written directory is directly crawlable (cmd/harvest -dir).
	for url, html := range s.SiteMap() {
		if err := os.WriteFile(filepath.Join(dir, strings.TrimPrefix(url, "/")), []byte(html), 0o644); err != nil {
			return err
		}
	}
	for li, lp := range s.Lists {
		var truth strings.Builder
		for ti, t := range lp.Truth {
			fmt.Fprintf(&truth, "record %d: %s\n", ti+1, strings.Join(t.Values, " | "))
		}
		name := fmt.Sprintf("list%d.truth.txt", li+1)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(truth.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
