package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"tableseg/internal/server"
)

// startDaemon serves a real internal/server instance for -remote tests.
func startDaemon(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRemoteJSONMatchesLocal is the -remote contract: the daemon path
// emits byte-identical -json output to the in-process path.
func TestRemoteJSONMatchesLocal(t *testing.T) {
	url := startDaemon(t)
	for _, method := range []string{"prob", "csp"} {
		base := append(writeTestSite(t), "-method", method, "-json")
		codeL, localOut, stderrL := runCLI(t, base...)
		if codeL != 0 {
			t.Fatalf("local %s: exit %d: %s", method, codeL, stderrL)
		}
		codeR, remoteOut, stderrR := runCLI(t, append(base, "-remote", url)...)
		if codeR != 0 {
			t.Fatalf("remote %s: exit %d: %s", method, codeR, stderrR)
		}
		if localOut != remoteOut {
			t.Errorf("%s: -remote -json differs from local:\nlocal:  %s\nremote: %s", method, localOut, remoteOut)
		}
	}
}

// TestRemoteCSVAndTextMatchLocal extends the contract to the CSV and
// human-readable renderings.
func TestRemoteCSVAndTextMatchLocal(t *testing.T) {
	url := startDaemon(t)
	for _, extra := range [][]string{{"-csv"}, {"-columns"}, {}} {
		base := append(writeTestSite(t), extra...)
		codeL, localOut, _ := runCLI(t, base...)
		codeR, remoteOut, stderrR := runCLI(t, append(base, "-remote", url)...)
		if codeL != 0 || codeR != 0 {
			t.Fatalf("%v: exits local=%d remote=%d: %s", extra, codeL, codeR, stderrR)
		}
		if localOut != remoteOut {
			t.Errorf("%v: remote output differs from local:\nlocal:  %q\nremote: %q", extra, localOut, remoteOut)
		}
	}
}

// TestRemoteServerError maps a daemon-side typed failure onto the CLI's
// failure exit code and message.
func TestRemoteServerError(t *testing.T) {
	url := startDaemon(t)
	args := append(writeTestSite(t), "-target", "9", "-remote", url)
	code, _, stderr := runCLI(t, args...)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "bad_target") {
		t.Errorf("stderr does not surface the wire code: %q", stderr)
	}
}

// TestRemoteConnectionRefused: an unreachable daemon is a clean
// failure, not a hang or a panic.
func TestRemoteConnectionRefused(t *testing.T) {
	args := append(writeTestSite(t), "-remote", "http://127.0.0.1:1")
	code, _, stderr := runCLI(t, args...)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "tableseg:") {
		t.Errorf("no diagnostic on stderr: %q", stderr)
	}
}
