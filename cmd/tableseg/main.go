// Command tableseg segments the records of a list page using its detail
// pages, from HTML files on disk:
//
//	tableseg -method prob -list l1.html -list l2.html -target 0 \
//	         -detail d1.html -detail d2.html -detail d3.html
//
// List pages are the sampled results pages of one site (at least two
// enable template finding); detail pages are the pages linked from the
// target list page, in link order. Output is one block per segmented
// record; -columns additionally prints the reconstructed relational
// table (probabilistic method only). -timeout bounds the run (the
// solvers abort at their next restart/iteration boundary) and -stats
// reports per-stage timing and solver effort on stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tableseg"
)

// multiFlag collects repeated -list/-detail flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var lists, details multiFlag
	flag.Var(&lists, "list", "list page HTML file (repeatable; >=2 enables template finding)")
	flag.Var(&details, "detail", "detail page HTML file (repeatable; in link order)")
	target := flag.Int("target", 0, "index of the list page to segment")
	method := flag.String("method", "prob", "segmentation method: prob, csp or combined")
	columns := flag.Bool("columns", false, "print the reconstructed relational table")
	jsonOut := flag.Bool("json", false, "emit the segmentation as JSON")
	csvOut := flag.Bool("csv", false, "emit the reconstructed table as CSV")
	stats := flag.Bool("stats", false, "print per-stage timing and solver effort to stderr")
	timeout := flag.Duration("timeout", 0, "abort the segmentation after this duration (0 = no limit)")
	flag.Parse()

	if len(lists) == 0 || len(details) == 0 {
		fmt.Fprintln(os.Stderr, "tableseg: need at least one -list and one -detail file")
		flag.Usage()
		os.Exit(2)
	}

	in := tableseg.Input{Target: *target}
	for _, f := range lists {
		in.ListPages = append(in.ListPages, mustRead(f))
	}
	for _, f := range details {
		in.DetailPages = append(in.DetailPages, mustRead(f))
	}

	var m tableseg.Method
	switch *method {
	case "prob", "probabilistic":
		m = tableseg.Probabilistic
	case "csp":
		m = tableseg.CSP
	case "combined":
		m = tableseg.Combined
	default:
		fmt.Fprintf(os.Stderr, "tableseg: unknown method %q (want prob, csp or combined)\n", *method)
		os.Exit(2)
	}

	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "tableseg: negative -timeout %v\n", *timeout)
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	eng, err := tableseg.NewEngine(tableseg.EngineConfig{Options: tableseg.DefaultOptions(m)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tableseg:", err)
		os.Exit(2)
	}
	res := eng.Segment(ctx, in)
	if *stats {
		printStats(res.Stats)
	}
	seg, err := res.Seg, res.Err
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "tableseg: timed out after %v\n", *timeout)
		} else {
			fmt.Fprintln(os.Stderr, "tableseg:", err)
		}
		os.Exit(1)
	}

	if *jsonOut {
		emitJSON(seg, m)
		return
	}
	if *csvOut {
		if err := tableseg.WriteCSV(os.Stdout, seg); err != nil {
			fmt.Fprintln(os.Stderr, "tableseg:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("method=%s analyzed=%d/%d extracts", m, seg.Analyzed, seg.TotalExtracts)
	if seg.UsedWholePage {
		fmt.Printf(" (page template problem: entire page used)")
	}
	if m == tableseg.CSP {
		fmt.Printf(" csp=%s", seg.CSPStatus)
	}
	fmt.Println()
	for _, rec := range seg.Records {
		fmt.Printf("record %d (detail page %d):\n", rec.Index+1, rec.Index+1)
		for i, ex := range rec.Extracts {
			col := ""
			if rec.Columns[i] >= 0 {
				col = fmt.Sprintf("  [L%d]", rec.Columns[i]+1)
			}
			fmt.Printf("  %s%s\n", ex.Text(), col)
		}
	}
	if *columns {
		fmt.Println("\nreconstructed table:")
		if len(seg.ColumnLabels) > 0 {
			fmt.Printf("     | %s\n", strings.Join(seg.ColumnLabels, " | "))
		}
		for i, row := range tableseg.ReconstructTable(seg) {
			fmt.Printf("  %2d | %s\n", i+1, strings.Join(row, " | "))
		}
	}
}

// jsonRecord is the JSON shape of one segmented record.
type jsonRecord struct {
	Record   int      `json:"record"`
	Extracts []string `json:"extracts"`
	Columns  []int    `json:"columns,omitempty"`
}

// jsonOutput is the JSON shape of a segmentation.
type jsonOutput struct {
	Method        string       `json:"method"`
	Analyzed      int          `json:"analyzedExtracts"`
	Total         int          `json:"totalExtracts"`
	UsedWholePage bool         `json:"usedWholePage"`
	CSPStatus     string       `json:"cspStatus,omitempty"`
	ColumnLabels  []string     `json:"columnLabels,omitempty"`
	Records       []jsonRecord `json:"records"`
	Table         [][]string   `json:"table"`
}

func emitJSON(seg *tableseg.Segmentation, m tableseg.Method) {
	out := jsonOutput{
		Method:        m.String(),
		Analyzed:      seg.Analyzed,
		Total:         seg.TotalExtracts,
		UsedWholePage: seg.UsedWholePage,
		ColumnLabels:  seg.ColumnLabels,
		Table:         tableseg.ReconstructTable(seg),
	}
	if m != tableseg.Probabilistic {
		out.CSPStatus = seg.CSPStatus.String()
	}
	for _, rec := range seg.Records {
		out.Records = append(out.Records, jsonRecord{
			Record:   rec.Index + 1,
			Extracts: rec.Texts(),
			Columns:  rec.Columns,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "tableseg:", err)
		os.Exit(1)
	}
}

// printStats reports the engine's per-stage instrumentation on stderr.
func printStats(st tableseg.TaskStats) {
	fmt.Fprintf(os.Stderr, "stats: wall=%v tokenize=%v template=%v extract=%v solve=%v\n",
		st.Wall.Round(time.Microsecond), st.TokenizeTime.Round(time.Microsecond),
		st.TemplateTime.Round(time.Microsecond), st.ExtractTime.Round(time.Microsecond),
		st.SolveTime.Round(time.Microsecond))
	fmt.Fprintf(os.Stderr, "stats: wsat restarts=%d flips=%d cutRounds=%d emIters=%d\n",
		st.WSATRestarts, st.WSATFlips, st.CutRounds, st.EMIters)
}

func mustRead(path string) tableseg.Page {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tableseg:", err)
		os.Exit(1)
	}
	return tableseg.Page{Name: path, HTML: string(data)}
}
