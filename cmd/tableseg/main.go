// Command tableseg segments the records of a list page using its detail
// pages, from HTML files on disk:
//
//	tableseg -method prob -list l1.html -list l2.html -target 0 \
//	         -detail d1.html -detail d2.html -detail d3.html
//
// List pages are the sampled results pages of one site (at least two
// enable template finding); detail pages are the pages linked from the
// target list page, in link order. Output is one block per segmented
// record; -columns additionally prints the reconstructed relational
// table (probabilistic method only). -timeout bounds the run (the
// solvers abort at their next restart/iteration boundary) and -stats
// reports per-stage timing and solver effort on stderr.
//
// -batch runs a JSON manifest of many such tasks through the engine's
// worker pool, emitting results in manifest order. -cache-dir adds a
// persistent artifact cache (tokenized pages, induced templates, and a
// result journal); -resume replays journaled results so an interrupted
// batch continues where it stopped with byte-identical output.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tableseg"
)

// multiFlag collects repeated -list/-detail flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the flag handling and
// output shapes are testable in-process. It returns the process exit
// code: 0 success, 1 segmentation failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tableseg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var lists, details multiFlag
	fs.Var(&lists, "list", "list page HTML file (repeatable; >=2 enables template finding)")
	fs.Var(&details, "detail", "detail page HTML file (repeatable; in link order)")
	target := fs.Int("target", 0, "index of the list page to segment")
	method := fs.String("method", "prob", "segmentation method: prob, csp or combined")
	columns := fs.Bool("columns", false, "print the reconstructed relational table")
	jsonOut := fs.Bool("json", false, "emit the segmentation as JSON")
	csvOut := fs.Bool("csv", false, "emit the reconstructed table as CSV")
	stats := fs.Bool("stats", false, "print per-stage timing and solver effort to stderr")
	timeout := fs.Duration("timeout", 0, "abort the segmentation after this duration (0 = no limit)")
	remote := fs.String("remote", "", "base URL of a tablesegd daemon (e.g. http://localhost:8844); segment there instead of in-process")
	cacheDir := fs.String("cache-dir", "", "persistent artifact-cache directory (adds a disk tier behind the in-memory cache)")
	cacheMem := fs.Int64("cache-mem", 0, "in-memory artifact-cache budget in bytes (0 = default)")
	resume := fs.Bool("resume", false, "replay journaled results from -cache-dir instead of recomputing finished tasks")
	batch := fs.String("batch", "", "JSON task manifest; segment every task through the engine pool")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *resume && *cacheDir == "" {
		fmt.Fprintln(stderr, "tableseg: -resume requires -cache-dir (the result journal lives in the disk cache)")
		fs.Usage()
		return 2
	}
	if *batch != "" {
		if len(lists) > 0 || len(details) > 0 || *remote != "" {
			fmt.Fprintln(stderr, "tableseg: -batch conflicts with -list/-detail/-remote")
			fs.Usage()
			return 2
		}
	} else if len(lists) == 0 || len(details) == 0 {
		fmt.Fprintln(stderr, "tableseg: need at least one -list and one -detail file")
		fs.Usage()
		return 2
	}

	in := tableseg.Input{Target: *target}
	for _, f := range lists {
		page, err := readPage(f)
		if err != nil {
			fmt.Fprintln(stderr, "tableseg:", err)
			return 1
		}
		in.ListPages = append(in.ListPages, page)
	}
	for _, f := range details {
		page, err := readPage(f)
		if err != nil {
			fmt.Fprintln(stderr, "tableseg:", err)
			return 1
		}
		in.DetailPages = append(in.DetailPages, page)
	}

	var m tableseg.Method
	switch *method {
	case "prob", "probabilistic":
		m = tableseg.Probabilistic
	case "csp":
		m = tableseg.CSP
	case "combined":
		m = tableseg.Combined
	default:
		fmt.Fprintf(stderr, "tableseg: unknown method %q (want prob, csp or combined)\n", *method)
		return 2
	}

	if *timeout < 0 {
		fmt.Fprintf(stderr, "tableseg: negative -timeout %v\n", *timeout)
		return 2
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *remote != "" {
		return runRemote(ctx, remoteJob{
			base:    *remote,
			in:      in,
			method:  *method,
			timeout: *timeout,
			jsonOut: *jsonOut,
			csvOut:  *csvOut,
			columns: *columns,
			stats:   *stats,
		}, stdout, stderr)
	}

	engOpts := []tableseg.EngineOption{
		tableseg.WithEngineOptions(tableseg.DefaultOptions(m)),
	}
	if *cacheDir != "" {
		engOpts = append(engOpts, tableseg.WithCacheDir(*cacheDir))
	}
	if *cacheMem != 0 {
		engOpts = append(engOpts, tableseg.WithCacheMemoryBudget(*cacheMem))
	}
	if *resume {
		engOpts = append(engOpts, tableseg.WithResume(true))
	}
	cfg, err := tableseg.NewEngineConfig(engOpts...)
	if err != nil {
		fmt.Fprintln(stderr, "tableseg:", err)
		return 2
	}
	eng, err := tableseg.NewEngine(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "tableseg:", err)
		return 2
	}

	if *batch != "" {
		return runBatch(ctx, eng, batchJob{
			manifest: *batch,
			method:   m,
			jsonOut:  *jsonOut,
			csvOut:   *csvOut,
			columns:  *columns,
			stats:    *stats,
		}, stdout, stderr)
	}

	res := eng.Segment(ctx, in)
	if *stats {
		printStats(stderr, res.Stats, eng.CacheStats())
	}
	seg, err := res.Seg, res.Err
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "tableseg: timed out after %v\n", *timeout)
		} else {
			fmt.Fprintln(stderr, "tableseg:", err)
		}
		return 1
	}

	if *jsonOut {
		if err := emitJSON(stdout, seg, m); err != nil {
			fmt.Fprintln(stderr, "tableseg:", err)
			return 1
		}
		return 0
	}
	if *csvOut {
		if err := tableseg.WriteCSV(stdout, seg); err != nil {
			fmt.Fprintln(stderr, "tableseg:", err)
			return 1
		}
		return 0
	}

	printSegText(stdout, seg, m, *columns)
	return 0
}

// printSegText writes the human-readable segmentation report shared by
// the single-site and -batch text modes.
func printSegText(w io.Writer, seg *tableseg.Segmentation, m tableseg.Method, columns bool) {
	fmt.Fprintf(w, "method=%s analyzed=%d/%d extracts", m, seg.Analyzed, seg.TotalExtracts)
	if seg.UsedWholePage {
		fmt.Fprintf(w, " (page template problem: entire page used)")
	}
	if m == tableseg.CSP {
		fmt.Fprintf(w, " csp=%s", seg.CSPStatus)
	}
	fmt.Fprintln(w)
	for _, rec := range seg.Records {
		fmt.Fprintf(w, "record %d (detail page %d):\n", rec.Index+1, rec.Index+1)
		for i, ex := range rec.Extracts {
			col := ""
			if rec.Columns[i] >= 0 {
				col = fmt.Sprintf("  [L%d]", rec.Columns[i]+1)
			}
			fmt.Fprintf(w, "  %s%s\n", ex.Text(), col)
		}
	}
	if columns {
		fmt.Fprintln(w, "\nreconstructed table:")
		if len(seg.ColumnLabels) > 0 {
			fmt.Fprintf(w, "     | %s\n", strings.Join(seg.ColumnLabels, " | "))
		}
		for i, row := range tableseg.ReconstructTable(seg) {
			fmt.Fprintf(w, "  %2d | %s\n", i+1, strings.Join(row, " | "))
		}
	}
}

// jsonRecord is the JSON shape of one segmented record.
type jsonRecord struct {
	Record   int      `json:"record"`
	Extracts []string `json:"extracts"`
	Columns  []int    `json:"columns,omitempty"`
}

// jsonOutput is the JSON shape of a segmentation.
type jsonOutput struct {
	Method        string       `json:"method"`
	Analyzed      int          `json:"analyzedExtracts"`
	Total         int          `json:"totalExtracts"`
	UsedWholePage bool         `json:"usedWholePage"`
	CSPStatus     string       `json:"cspStatus,omitempty"`
	ColumnLabels  []string     `json:"columnLabels,omitempty"`
	Records       []jsonRecord `json:"records"`
	Table         [][]string   `json:"table"`
}

// buildJSONOutput assembles the JSON shape shared by the single-site
// (indented) and -batch (JSONL) modes.
func buildJSONOutput(seg *tableseg.Segmentation, m tableseg.Method) jsonOutput {
	out := jsonOutput{
		Method:        m.String(),
		Analyzed:      seg.Analyzed,
		Total:         seg.TotalExtracts,
		UsedWholePage: seg.UsedWholePage,
		ColumnLabels:  seg.ColumnLabels,
		Table:         tableseg.ReconstructTable(seg),
	}
	if m != tableseg.Probabilistic {
		out.CSPStatus = seg.CSPStatus.String()
	}
	for _, rec := range seg.Records {
		out.Records = append(out.Records, jsonRecord{
			Record:   rec.Index + 1,
			Extracts: rec.Texts(),
			Columns:  rec.Columns,
		})
	}
	return out
}

func emitJSON(w io.Writer, seg *tableseg.Segmentation, m tableseg.Method) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildJSONOutput(seg, m))
}

// printStats reports the engine's per-stage instrumentation and cache
// counters.
func printStats(w io.Writer, st tableseg.TaskStats, cs tableseg.CacheStats) {
	fmt.Fprintf(w, "stats: wall=%v tokenize=%v template=%v extract=%v solve=%v\n",
		st.Wall.Round(time.Microsecond), st.TokenizeTime.Round(time.Microsecond),
		st.TemplateTime.Round(time.Microsecond), st.ExtractTime.Round(time.Microsecond),
		st.SolveTime.Round(time.Microsecond))
	for _, s := range st.Stages {
		fmt.Fprintf(w, "stats: stage=%s calls=%d time=%v\n",
			s.Name, s.Calls, s.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "stats: wsat restarts=%d flips=%d cutRounds=%d emIters=%d\n",
		st.WSATRestarts, st.WSATFlips, st.CutRounds, st.EMIters)
	printCacheStats(w, cs)
}

// printCacheStats reports the engine-level cache counters plus one line
// per artifact-store tier. The token/template line shape is load-bearing
// (tests and smoke scripts match it); new counters go on their own
// lines.
func printCacheStats(w io.Writer, cs tableseg.CacheStats) {
	fmt.Fprintf(w, "stats: cache tokenHits=%d tokenMisses=%d templateHits=%d templateMisses=%d\n",
		cs.TokenHits, cs.TokenMisses, cs.TemplateHits, cs.TemplateMisses)
	fmt.Fprintf(w, "stats: cache resultHits=%d resultMisses=%d\n", cs.ResultHits, cs.ResultMisses)
	for _, t := range cs.Tiers {
		fmt.Fprintf(w, "stats: cache tier=%s hits=%d misses=%d puts=%d evictions=%d errors=%d entries=%d bytes=%d\n",
			t.Tier, t.Hits, t.Misses, t.Puts, t.Evictions, t.Errors, t.Entries, t.Bytes)
	}
}

func readPage(path string) (tableseg.Page, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return tableseg.Page{}, err
	}
	return tableseg.Page{Name: path, HTML: string(data)}, nil
}
