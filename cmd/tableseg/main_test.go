package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// The Superpages worked example (§3 of the paper): three records with
// detail pages, small enough for in-process CLI tests.
const testList = `<html><head><title>Superpages</title></head><body>
<h1>Superpages</h1><p>Results - 3 Matching Listings</p>
<div><b>John Smith</b><br>221 Washington<br>New Holland<br>(740) 335-5555 <a href="d1">More Info</a></div>
<div><b>John Smith</b><br>221R Washington<br>Washington<br>(740) 335-5555 <a href="d2">More Info</a></div>
<div><b>George W. Smith</b><br>Findlay, OH<br>(419) 423-1212 <a href="d3">More Info</a></div>
<p>Copyright Superpages</p></body></html>`

var testDetails = []string{
	`<html><body><h1>Superpages</h1><h2>Listing Detail</h2><p>John Smith</p><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p><p>Map It</p></body></html>`,
	`<html><body><h1>Superpages</h1><h2>Listing Detail</h2><p>John Smith</p><p>221R Washington</p><p>Washington</p><p>(740) 335-5555</p><p>Map It</p></body></html>`,
	`<html><body><h1>Superpages</h1><h2>Listing Detail</h2><p>George W. Smith</p><p>Findlay, OH</p><p>(419) 423-1212</p><p>Map It</p></body></html>`,
}

// writeTestSite writes the example pages to a temp dir and returns the
// -list/-detail arguments addressing them.
func writeTestSite(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	list := filepath.Join(dir, "list.html")
	if err := os.WriteFile(list, []byte(testList), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-list", list}
	for i, d := range testDetails {
		p := filepath.Join(dir, "d"+string(rune('1'+i))+".html")
		if err := os.WriteFile(p, []byte(d), 0o644); err != nil {
			t.Fatal(err)
		}
		args = append(args, "-detail", p)
	}
	return args
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestNegativeTimeoutRejected(t *testing.T) {
	args := append(writeTestSite(t), "-timeout", "-3s")
	code, _, stderr := runCLI(t, args...)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr, "negative -timeout") {
		t.Errorf("stderr %q does not mention the negative -timeout", stderr)
	}
}

func TestMissingInputsRejected(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "need at least one -list") {
		t.Errorf("stderr %q does not explain the missing inputs", stderr)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	args := append(writeTestSite(t), "-method", "quantum")
	code, _, stderr := runCLI(t, args...)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown method "quantum"`) {
		t.Errorf("stderr %q does not name the bad method", stderr)
	}
}

func TestBadFlagRejected(t *testing.T) {
	code, _, _ := runCLI(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

var statsLine1 = regexp.MustCompile(`(?m)^stats: wall=\S+ tokenize=\S+ template=\S+ extract=\S+ solve=\S+$`)
var statsLine2 = regexp.MustCompile(`(?m)^stats: wsat restarts=\d+ flips=\d+ cutRounds=\d+ emIters=\d+$`)
var statsStage = regexp.MustCompile(`(?m)^stats: stage=(\w+) calls=\d+ time=\S+$`)
var statsCache = regexp.MustCompile(`(?m)^stats: cache tokenHits=\d+ tokenMisses=\d+ templateHits=\d+ templateMisses=\d+$`)

func TestStatsOutputShape(t *testing.T) {
	args := append(writeTestSite(t), "-stats")
	code, stdout, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !statsLine1.MatchString(stderr) {
		t.Errorf("stderr missing the per-stage timing line:\n%s", stderr)
	}
	if !statsLine2.MatchString(stderr) {
		t.Errorf("stderr missing the solver-effort line:\n%s", stderr)
	}
	if !statsCache.MatchString(stderr) {
		t.Errorf("stderr missing the cache-counter line:\n%s", stderr)
	}
	var stages []string
	for _, m := range statsStage.FindAllStringSubmatch(stderr, -1) {
		stages = append(stages, m[1])
	}
	want := []string{"Tokenize", "InduceTemplate", "SelectSlot", "Extract", "Observe", "Segment", "PostProcess"}
	if !reflect.DeepEqual(stages, want) {
		t.Errorf("stage lines = %v, want %v\nstderr:\n%s", stages, want, stderr)
	}
	if !strings.Contains(stdout, "record 1") {
		t.Errorf("stdout missing segmented records:\n%s", stdout)
	}
}

func TestResumeRequiresCacheDir(t *testing.T) {
	args := append(writeTestSite(t), "-resume")
	code, _, stderr := runCLI(t, args...)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-resume requires -cache-dir") {
		t.Errorf("stderr %q does not explain the -resume/-cache-dir coupling", stderr)
	}
}

func TestBatchConflictsWithSingleSiteFlags(t *testing.T) {
	args := append(writeTestSite(t), "-batch", "manifest.json")
	code, _, stderr := runCLI(t, args...)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-batch conflicts") {
		t.Errorf("stderr %q does not explain the -batch conflict", stderr)
	}
}

func TestBatchRejectsBadManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-batch", path)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "bad -batch manifest") {
		t.Errorf("stderr %q does not name the bad manifest", stderr)
	}
}

// writeTestManifest writes the example site to disk twice (two tasks)
// and returns the manifest path.
func writeTestManifest(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	list := filepath.Join(dir, "list.html")
	if err := os.WriteFile(list, []byte(testList), 0o644); err != nil {
		t.Fatal(err)
	}
	var detailPaths []string
	for i, d := range testDetails {
		p := filepath.Join(dir, "d"+string(rune('1'+i))+".html")
		if err := os.WriteFile(p, []byte(d), 0o644); err != nil {
			t.Fatal(err)
		}
		detailPaths = append(detailPaths, p)
	}
	type mtask struct {
		ID      string   `json:"id"`
		Lists   []string `json:"lists"`
		Target  int      `json:"target"`
		Details []string `json:"details"`
	}
	manifest := []mtask{
		{ID: "alpha", Lists: []string{list}, Details: detailPaths},
		{ID: "beta", Lists: []string{list}, Details: detailPaths[:2]},
	}
	data, err := json.Marshal(manifest)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBatchJSONOutputAndResume(t *testing.T) {
	manifest := writeTestManifest(t)
	cache := t.TempDir()

	code, cold, stderr := runCLI(t, "-batch", manifest, "-json", "-cache-dir", cache)
	if code != 0 {
		t.Fatalf("cold run exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(cold, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("cold run emitted %d JSONL lines, want 2:\n%s", len(lines), cold)
	}
	for i, line := range lines {
		var out struct {
			Index  int             `json:"index"`
			ID     string          `json:"id"`
			Output json.RawMessage `json:"output"`
			Error  string          `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &out); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if out.Index != i || out.Error != "" || len(out.Output) == 0 {
			t.Errorf("line %d = %+v, want index %d with output and no error", i, out, i)
		}
	}
	if !strings.Contains(lines[0], `"id":"alpha"`) || !strings.Contains(lines[1], `"id":"beta"`) {
		t.Errorf("JSONL lines are not in manifest order:\n%s", cold)
	}

	code, warm, stderr := runCLI(t, "-batch", manifest, "-json", "-cache-dir", cache, "-resume", "-stats")
	if code != 0 {
		t.Fatalf("resumed run exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	if warm != cold {
		t.Errorf("resumed output differs from the cold run:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if !strings.Contains(stderr, "stats: batch tasks=2 errors=0 resumed=2") {
		t.Errorf("resumed run stderr missing the batch summary:\n%s", stderr)
	}
}

// TestWarmDiskCacheStats pins the warm-cache acceptance at the CLI: a
// second process over the same -cache-dir re-tokenizes nothing.
func TestWarmDiskCacheStats(t *testing.T) {
	cache := t.TempDir()
	args := append(writeTestSite(t), "-stats", "-cache-dir", cache)
	code, _, _ := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("cold run exit code = %d, want 0", code)
	}
	code, _, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("warm run exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr, "stats: cache tokenHits=4 tokenMisses=0 templateHits=1 templateMisses=0") {
		t.Errorf("warm run stderr missing the all-hits cache line:\n%s", stderr)
	}
	if !regexp.MustCompile(`(?m)^stats: cache tier=disk hits=\d+ misses=\d+ puts=\d+ evictions=\d+ errors=\d+ entries=\d+ bytes=\d+$`).MatchString(stderr) {
		t.Errorf("warm run stderr missing the disk-tier line:\n%s", stderr)
	}
}

func TestJSONOutputShape(t *testing.T) {
	args := append(writeTestSite(t), "-json")
	code, stdout, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	var out struct {
		Method  string `json:"method"`
		Records []struct {
			Record   int      `json:"record"`
			Extracts []string `json:"extracts"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if out.Method == "" || len(out.Records) == 0 {
		t.Errorf("JSON output missing method/records: %+v", out)
	}
}
