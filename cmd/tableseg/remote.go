package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"tableseg"
	apiv1 "tableseg/api/v1"
	"tableseg/internal/server/client"
)

// remoteJob bundles one -remote invocation's inputs and output mode.
type remoteJob struct {
	base    string
	in      tableseg.Input
	method  string
	timeout time.Duration
	jsonOut bool
	csvOut  bool
	columns bool
	stats   bool
}

// runRemote performs the segmentation through a tablesegd daemon and
// renders the same outputs as the in-process path: -json output is
// byte-identical to a local run over the same input.
func runRemote(ctx context.Context, job remoteJob, stdout, stderr io.Writer) int {
	req := &apiv1.SegmentRequest{
		Method:        job.method,
		Target:        job.in.Target,
		TimeoutMillis: job.timeout.Milliseconds(),
		WantStats:     job.stats,
	}
	for _, p := range job.in.ListPages {
		req.ListPages = append(req.ListPages, apiv1.Page{Name: p.Name, HTML: p.HTML})
	}
	for _, p := range job.in.DetailPages {
		req.DetailPages = append(req.DetailPages, apiv1.Page{Name: p.Name, HTML: p.HTML})
	}

	resp, err := client.New(job.base, nil).Segment(ctx, req)
	if err != nil {
		fmt.Fprintln(stderr, "tableseg:", err)
		return 1
	}
	if job.stats {
		printRemoteStats(stderr, resp.Stats)
	}

	if job.jsonOut {
		out := jsonOutput{
			Method:        resp.Method,
			Analyzed:      resp.AnalyzedExtracts,
			Total:         resp.TotalExtracts,
			UsedWholePage: resp.UsedWholePage,
			CSPStatus:     resp.CSPStatus,
			ColumnLabels:  resp.ColumnLabels,
			Table:         resp.Table,
		}
		for _, rec := range resp.Records {
			out.Records = append(out.Records, jsonRecord{
				Record:   rec.Record,
				Extracts: rec.Extracts,
				Columns:  rec.Columns,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "tableseg:", err)
			return 1
		}
		return 0
	}
	if job.csvOut {
		if err := writeRemoteCSV(stdout, resp); err != nil {
			fmt.Fprintln(stderr, "tableseg:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "method=%s analyzed=%d/%d extracts", resp.Method, resp.AnalyzedExtracts, resp.TotalExtracts)
	if resp.UsedWholePage {
		fmt.Fprintf(stdout, " (page template problem: entire page used)")
	}
	if job.method == "csp" {
		fmt.Fprintf(stdout, " csp=%s", resp.CSPStatus)
	}
	fmt.Fprintln(stdout)
	for _, rec := range resp.Records {
		fmt.Fprintf(stdout, "record %d (detail page %d):\n", rec.Record, rec.Record)
		for i, text := range rec.Extracts {
			col := ""
			if i < len(rec.Columns) && rec.Columns[i] >= 0 {
				col = fmt.Sprintf("  [L%d]", rec.Columns[i]+1)
			}
			fmt.Fprintf(stdout, "  %s%s\n", text, col)
		}
	}
	if job.columns {
		fmt.Fprintln(stdout, "\nreconstructed table:")
		if len(resp.ColumnLabels) > 0 {
			fmt.Fprintf(stdout, "     | %s\n", strings.Join(resp.ColumnLabels, " | "))
		}
		for i, row := range resp.Table {
			fmt.Fprintf(stdout, "  %2d | %s\n", i+1, strings.Join(row, " | "))
		}
	}
	return 0
}

// writeRemoteCSV mirrors tableseg.WriteCSV over the wire response:
// header from the column labels (with L<n> fallbacks), every row
// padded to the wider of the header and the widest row.
func writeRemoteCSV(w io.Writer, resp *apiv1.SegmentResponse) error {
	cw := csv.NewWriter(w)
	if len(resp.ColumnLabels) > 0 {
		header := make([]string, len(resp.ColumnLabels))
		for i, l := range resp.ColumnLabels {
			if l == "" {
				l = "L" + strconv.Itoa(i+1) // same fallback as tableseg.WriteCSV
			}
			header[i] = l
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	width := len(resp.ColumnLabels)
	for _, row := range resp.Table {
		if len(row) > width {
			width = len(row)
		}
	}
	for _, row := range resp.Table {
		padded := make([]string, width)
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// printRemoteStats reports the server-measured per-stage timings.
func printRemoteStats(w io.Writer, st *apiv1.TaskStats) {
	if st == nil {
		fmt.Fprintln(w, "stats: server returned no stats")
		return
	}
	fmt.Fprintf(w, "stats: wall=%.3fms (server)\n", st.WallMillis)
	for _, s := range st.Stages {
		fmt.Fprintf(w, "stats: stage=%s calls=%d time=%.3fms\n", s.Stage, s.Calls, s.Millis)
	}
	fmt.Fprintf(w, "stats: wsat restarts=%d flips=%d emIters=%d\n",
		st.WSATRestarts, st.WSATFlips, st.EMIters)
	fmt.Fprintf(w, "stats: cache templateHit=%v tokenHits=%d tokenMisses=%d\n",
		st.TemplateCacheHit, st.TokenCacheHits, st.TokenCacheMisses)
}
