package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tableseg"
)

// manifestTask is one entry of a -batch manifest: the file-path form of
// a segmentation task. The manifest is a JSON array of these.
type manifestTask struct {
	// ID labels the task in the batch output (defaults to "task<index>").
	ID string `json:"id"`
	// Lists are list-page HTML files (>=2 enables template finding).
	Lists []string `json:"lists"`
	// Target is the index of the list page to segment.
	Target int `json:"target"`
	// Details are the target page's detail-page HTML files, in link
	// order.
	Details []string `json:"details"`
}

// batchJob carries the batch-mode flag state into runBatch.
type batchJob struct {
	manifest string
	method   tableseg.Method
	jsonOut  bool
	csvOut   bool
	columns  bool
	stats    bool
}

// jsonBatchLine is the JSONL shape of one batch result: exactly one of
// Output and Error is set.
type jsonBatchLine struct {
	Index  int         `json:"index"`
	ID     string      `json:"id"`
	Output *jsonOutput `json:"output,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// runBatch segments every manifest task through the engine pool and
// emits results in manifest order — tasks complete concurrently but
// the output is flushed as a strictly contiguous prefix, so two runs
// over the same manifest produce byte-identical streams. It returns 0
// when every task succeeded, 1 when any failed, 2 on a bad manifest.
func runBatch(ctx context.Context, eng *tableseg.Engine, job batchJob, stdout, stderr io.Writer) int {
	tasks, code := loadManifest(job.manifest, stderr)
	if code != 0 {
		return code
	}

	in := make(chan tableseg.Task)
	go func() {
		defer close(in)
		for _, t := range tasks {
			select {
			case in <- t:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Results arrive in completion order; hold early finishers until
	// every lower-index task has been flushed.
	pending := make(map[int]tableseg.Result, len(tasks))
	next := 0
	failed := 0
	resumed := 0
	flush := func(res tableseg.Result) int {
		if res.Err != nil {
			failed++
		}
		if res.Stats.ResultCacheHit {
			resumed++
		}
		if err := emitBatchResult(stdout, res, job); err != nil {
			fmt.Fprintln(stderr, "tableseg:", err)
			return 1
		}
		return 0
	}
	for res := range eng.Stream(ctx, in) {
		pending[res.Index] = res
		for {
			res, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if flush(res) != 0 {
				return 1
			}
		}
	}

	if job.stats {
		fmt.Fprintf(stderr, "stats: batch tasks=%d errors=%d resumed=%d\n",
			len(tasks), failed, resumed)
		printCacheStats(stderr, eng.CacheStats())
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// loadManifest parses a -batch manifest and reads every referenced page
// into engine tasks. Any manifest problem — unreadable file, bad JSON,
// a task without pages, a missing page file — is a usage error (2):
// nothing has been segmented yet, so failing fast beats emitting a
// partial batch.
func loadManifest(path string, stderr io.Writer) ([]tableseg.Task, int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "tableseg:", err)
		return nil, 2
	}
	var entries []manifestTask
	if err := json.Unmarshal(data, &entries); err != nil {
		fmt.Fprintf(stderr, "tableseg: bad -batch manifest %s: %v\n", path, err)
		return nil, 2
	}
	if len(entries) == 0 {
		fmt.Fprintf(stderr, "tableseg: -batch manifest %s has no tasks\n", path)
		return nil, 2
	}
	tasks := make([]tableseg.Task, 0, len(entries))
	for i, ent := range entries {
		id := ent.ID
		if id == "" {
			id = fmt.Sprintf("task%d", i)
		}
		if len(ent.Lists) == 0 || len(ent.Details) == 0 {
			fmt.Fprintf(stderr, "tableseg: manifest task %d (%s) needs lists and details\n", i, id)
			return nil, 2
		}
		in := tableseg.Input{Target: ent.Target}
		for _, f := range ent.Lists {
			page, err := readPage(f)
			if err != nil {
				fmt.Fprintf(stderr, "tableseg: manifest task %d (%s): %v\n", i, id, err)
				return nil, 2
			}
			in.ListPages = append(in.ListPages, page)
		}
		for _, f := range ent.Details {
			page, err := readPage(f)
			if err != nil {
				fmt.Fprintf(stderr, "tableseg: manifest task %d (%s): %v\n", i, id, err)
				return nil, 2
			}
			in.DetailPages = append(in.DetailPages, page)
		}
		tasks = append(tasks, tableseg.Task{ID: id, Input: in})
	}
	return tasks, 0
}

// emitBatchResult writes one task's outcome in the selected output
// mode. JSON mode emits one compact JSONL object per task; CSV mode a
// commented header plus the table; text mode a task banner plus the
// usual report.
func emitBatchResult(stdout io.Writer, res tableseg.Result, job batchJob) error {
	switch {
	case job.jsonOut:
		line := jsonBatchLine{Index: res.Index, ID: res.ID}
		if res.Err != nil {
			line.Error = res.Err.Error()
		} else {
			out := buildJSONOutput(res.Seg, job.method)
			line.Output = &out
		}
		data, err := json.Marshal(line)
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, err = stdout.Write(data)
		return err
	case job.csvOut:
		if res.Err != nil {
			_, err := fmt.Fprintf(stdout, "# task %d %s error: %v\n\n", res.Index, res.ID, res.Err)
			return err
		}
		if _, err := fmt.Fprintf(stdout, "# task %d %s\n", res.Index, res.ID); err != nil {
			return err
		}
		if err := tableseg.WriteCSV(stdout, res.Seg); err != nil {
			return err
		}
		_, err := fmt.Fprintln(stdout)
		return err
	default:
		if _, err := fmt.Fprintf(stdout, "== task %d %s\n", res.Index, res.ID); err != nil {
			return err
		}
		if res.Err != nil {
			_, err := fmt.Fprintf(stdout, "error: %v\n", res.Err)
			return err
		}
		printSegText(stdout, res.Seg, job.method, job.columns)
		return nil
	}
}
