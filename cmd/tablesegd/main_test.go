package main

import (
	"strings"
	"testing"
)

func TestUnknownMethodRejected(t *testing.T) {
	var stderr strings.Builder
	if code := run([]string{"-method", "quantum"}, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown method") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestBadFlagRejected(t *testing.T) {
	var stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	var stderr strings.Builder
	if code := run([]string{"-workers", "-3"}, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
