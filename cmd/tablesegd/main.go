// Command tablesegd serves table segmentation over HTTP/JSON:
//
//	tablesegd -addr :8844 -workers 4
//
// It exposes the api/v1 wire surface (POST /v1/segment) on top of the
// concurrent engine, with request coalescing (identical concurrent
// submissions share one computation), bounded admission (429 +
// Retry-After beyond the queue), optional per-client rate limiting,
// /healthz and /varz, and graceful drain on SIGTERM/SIGINT: in-flight
// segmentations complete, queued-but-unadmitted requests get 503, and
// the process exits once the last response is written (or the drain
// timeout expires). -cache-dir persists the artifact cache (tokenized
// pages, induced templates, journaled results) across restarts;
// -resume additionally answers repeated requests straight from the
// journal. Per-tier cache counters are exported on /varz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tableseg"
	"tableseg/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main with its dependencies injected. It returns the process
// exit code: 0 clean shutdown, 1 serve or drain failure, 2 usage
// error.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("tablesegd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8844", "listen address")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	method := fs.String("method", "prob", "default method for requests that name none: prob, csp or combined")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent segmentations admitted (0 = worker count)")
	maxQueue := fs.Int("max-queue", 0, "requests waiting for admission before 429 (0 = 4x max-inflight)")
	rate := fs.Float64("rate", 0, "per-client requests/sec (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-client burst size (0 = one second of -rate)")
	defaultTimeout := fs.Duration("default-timeout", 0, "segmentation deadline for requests that carry none (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp applied to request-supplied deadlines (0 = no clamp)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	cacheDir := fs.String("cache-dir", "", "persistent artifact-cache directory (adds a disk tier behind the in-memory cache)")
	cacheMem := fs.Int64("cache-mem", 0, "in-memory artifact-cache budget in bytes (0 = default)")
	cacheDisk := fs.Int64("cache-disk", 0, "disk artifact-cache budget in bytes (0 = default; needs -cache-dir)")
	resume := fs.Bool("resume", false, "answer repeated requests from the -cache-dir result journal")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *resume && *cacheDir == "" {
		fmt.Fprintln(stderr, "tablesegd: -resume requires -cache-dir (the result journal lives in the disk cache)")
		fs.Usage()
		return 2
	}

	var m tableseg.Method
	switch *method {
	case "prob", "probabilistic":
		m = tableseg.Probabilistic
	case "csp":
		m = tableseg.CSP
	case "combined":
		m = tableseg.Combined
	default:
		fmt.Fprintf(stderr, "tablesegd: unknown method %q (want prob, csp or combined)\n", *method)
		return 2
	}
	opts, err := tableseg.NewOptions(tableseg.WithMethod(m))
	if err != nil {
		fmt.Fprintln(stderr, "tablesegd:", err)
		return 2
	}

	srv, err := server.New(server.Config{
		Engine: tableseg.EngineConfig{
			Options:          opts,
			Concurrency:      *workers,
			CacheDir:         *cacheDir,
			CacheMemoryBytes: *cacheMem,
			CacheDiskBytes:   *cacheDisk,
			Resume:           *resume,
		},
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RatePerSec:     *rate,
		Burst:          *burst,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
	})
	if err != nil {
		fmt.Fprintln(stderr, "tablesegd:", err)
		return 2
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		fmt.Fprintf(stderr, "tablesegd: listening on %s\n", *addr)
		serveErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "tablesegd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stderr, "tablesegd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	// Drain first: /healthz flips to 503 and queued requests are
	// released while their connections are still being served; only
	// then is the listener shut down.
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "tablesegd: drain:", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "tablesegd: shutdown:", err)
		code = 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "tablesegd:", err)
		code = 1
	}
	fmt.Fprintln(stderr, "tablesegd: drained")
	return code
}
