// Package tableseg is an implementation of "Using the Structure of Web
// Sites for Automatic Segmentation of Tables" (Lerman, Getoor, Minton,
// Knoblock; SIGMOD 2004): fully automatic, unsupervised, domain-
// independent extraction of records from the list pages of hidden-Web
// sites, using the redundancy between a list page and the detail pages
// linked from it.
//
// Two segmentation methods are provided, mirroring the paper:
//
//   - the CSP method (§4) encodes uniqueness, consecutiveness and
//     position constraints over 0/1 assignment variables and solves them
//     with a WSAT(OIP)-style local-search optimizer, descending a
//     relaxation ladder when the data is inconsistent;
//   - the probabilistic method (§5) learns a factored hidden Markov
//     model — record number, column label, record-start flag, with
//     observed token types and detail-page sets — by EM with a
//     structured forward–backward pass and an explicit record-period
//     model, then decodes the MAP segmentation. It additionally assigns
//     extracts to columns (§3.4).
//
// Both share the front end of §3: page tokenization into eight syntactic
// token types, page-template induction from two or more sample list
// pages, table-slot location, extract segmentation, and the detail-page
// observation matrix.
//
// Quick start:
//
//	in := tableseg.Input{
//	    ListPages:   []tableseg.Page{{Name: "l1", HTML: list1}, {Name: "l2", HTML: list2}},
//	    Target:      0,
//	    DetailPages: details, // one Page per record link, in order
//	}
//	seg, err := tableseg.SegmentProbabilistic(in)
//	for _, rec := range seg.Records {
//	    fmt.Println(rec.Index, rec.Texts())
//	}
//
// SegmentContext adds cancellation/deadline support (honored down in
// the solver loops); failures are typed sentinels (ErrNoDetailEvidence,
// ErrCSPUnsatisfiable, ...) matchable with errors.Is. For batch work
// use Engine, a concurrent pool that caches per-site templates and
// reports per-task stats while producing results identical to serial
// Segment calls.
package tableseg

import (
	"context"
	"encoding/csv"
	"io"
	"strconv"

	"tableseg/internal/core"
	"tableseg/internal/csp"
	"tableseg/internal/phmm"
)

// Page is one HTML document (a list page or a detail page).
type Page = core.Page

// Input describes one segmentation task: the sampled list pages of a
// site, which one to segment, and the detail pages linked from it in
// record order.
type Input = core.Input

// Options tunes the pipeline; see DefaultOptions.
type Options = core.Options

// Method selects the segmentation algorithm.
type Method = core.Method

// The paper's two methods plus the §7 combination (CSP when the strict
// constraints hold, probabilistic otherwise).
const (
	CSP           = core.CSP
	Probabilistic = core.Probabilistic
	Combined      = core.Combined
)

// Record is one segmented record: its extracts in stream order and, for
// the probabilistic method, their column labels.
type Record = core.Record

// Segmentation is the result of Segment: records plus diagnostics
// (template quality, whole-page fallback, CSP status, learned model).
type Segmentation = core.Segmentation

// CSPParams configures the constraint solver.
type CSPParams = csp.SolveParams

// PHMMParams configures the probabilistic model.
type PHMMParams = phmm.Params

// DefaultOptions returns the paper-reproduction configuration for a
// method. It remains fully supported, but new code should prefer the
// functional-option path — NewOptions(WithMethod(m), ...) — which
// yields the identical configuration and validates it at construction
// instead of at the first Segment call.
func DefaultOptions(m Method) Options { return core.DefaultOptions(m) }

// SegmentContext runs the full pipeline with explicit options under a
// context. Cancellation is honored at stage boundaries and inside the
// solvers (WSAT restart and EM iteration boundaries), returning
// ctx.Err(); an uncancelled run computes exactly what Segment does.
// Options are validated first (ErrBadOptions).
func SegmentContext(ctx context.Context, in Input, opts Options) (*Segmentation, error) {
	return core.SegmentContext(ctx, in, opts)
}

// Segment runs the full pipeline with explicit options.
func Segment(in Input, opts Options) (*Segmentation, error) {
	return SegmentContext(context.Background(), in, opts)
}

// SegmentCSP segments with the §4 constraint-satisfaction method under
// default options.
func SegmentCSP(in Input) (*Segmentation, error) {
	return SegmentContext(context.Background(), in, core.DefaultOptions(core.CSP))
}

// SegmentProbabilistic segments with the §5 probabilistic method under
// default options.
func SegmentProbabilistic(in Input) (*Segmentation, error) {
	return SegmentContext(context.Background(), in, core.DefaultOptions(core.Probabilistic))
}

// WriteCSV emits the reconstructed relational table as CSV. When the
// segmentation carries mined column labels they become the header row
// (missing names are filled as L1, L2, ...); otherwise no header is
// written.
func WriteCSV(w io.Writer, seg *Segmentation) error {
	cw := csv.NewWriter(w)
	table := ReconstructTable(seg)
	if len(seg.ColumnLabels) > 0 {
		header := make([]string, len(seg.ColumnLabels))
		for i, l := range seg.ColumnLabels {
			if l == "" {
				l = labelName(i)
			}
			header[i] = l
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	// Pad every row to the wider of the widest row and the header, so
	// the CSV is rectangular even when some learned columns are empty
	// in every record.
	width := len(seg.ColumnLabels)
	for _, row := range table {
		if len(row) > width {
			width = len(row)
		}
	}
	for _, row := range table {
		padded := make([]string, width)
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// labelName renders the default column name L<n>.
func labelName(i int) string {
	return "L" + strconv.Itoa(i+1)
}

// ReconstructTable rebuilds a relational view of a segmentation: one row
// per record, one column per learned column label (§3.4). It requires a
// probabilistic segmentation (column labels available); extracts without
// a column label are appended to the row's last populated cell's right.
// Cells may be empty when a record misses a field.
func ReconstructTable(seg *Segmentation) [][]string {
	width := 0
	for _, rec := range seg.Records {
		for _, c := range rec.Columns {
			if c+1 > width {
				width = c + 1
			}
		}
	}
	if width == 0 {
		// No column labels (CSP method): one cell per extract.
		out := make([][]string, len(seg.Records))
		for i, rec := range seg.Records {
			out[i] = rec.Texts()
		}
		return out
	}
	out := make([][]string, len(seg.Records))
	for i, rec := range seg.Records {
		row := make([]string, width)
		last := 0
		for k, ex := range rec.Extracts {
			c := rec.Columns[k]
			if c < 0 {
				c = last // unattributed extracts ride with the last labeled column
			} else {
				last = c
			}
			if row[c] == "" {
				row[c] = ex.Text()
			} else {
				row[c] += " " + ex.Text()
			}
		}
		out[i] = row
	}
	return out
}
