package tableseg

import (
	"encoding/csv"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"tableseg/internal/extract"
	"tableseg/internal/sitegen"
)

func exampleInput(t *testing.T) Input {
	t.Helper()
	site, err := sitegen.GenerateBySlug("butler", 42)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Target: 0}
	for _, l := range site.Lists {
		in.ListPages = append(in.ListPages, Page{HTML: l.HTML})
	}
	for _, d := range site.Lists[0].Details {
		in.DetailPages = append(in.DetailPages, Page{HTML: d})
	}
	return in
}

func TestPublicAPISegment(t *testing.T) {
	in := exampleInput(t)
	prob, err := SegmentProbabilistic(in)
	if err != nil {
		t.Fatal(err)
	}
	cspSeg, err := SegmentCSP(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Records) != 15 || len(cspSeg.Records) != 15 {
		t.Fatalf("records: prob %d, csp %d, want 15", len(prob.Records), len(cspSeg.Records))
	}
	for i := range prob.Records {
		a := strings.Join(prob.Records[i].Texts(), "|")
		b := strings.Join(cspSeg.Records[i].Texts(), "|")
		if a != b {
			t.Errorf("record %d: methods disagree on clean data:\n  prob %s\n  csp  %s", i, a, b)
		}
	}
}

func TestSegmentWithOptions(t *testing.T) {
	in := exampleInput(t)
	opts := DefaultOptions(Probabilistic)
	opts.PHMMParams.MaxIter = 3
	seg, err := Segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seg.PHMM.Iters > 3 {
		t.Errorf("EM ran %d iterations, cap was 3", seg.PHMM.Iters)
	}
}

func TestReconstructTable(t *testing.T) {
	in := exampleInput(t)
	seg, err := SegmentProbabilistic(in)
	if err != nil {
		t.Fatal(err)
	}
	table := ReconstructTable(seg)
	if len(table) != 15 {
		t.Fatalf("%d rows", len(table))
	}
	// Every row's first column holds the record's first extract (the
	// parcel id for this site).
	for i, row := range table {
		if row[0] == "" {
			t.Errorf("row %d has empty first column: %v", i, row)
		}
		if !strings.Contains(row[0], "-") {
			t.Errorf("row %d first column %q does not look like a parcel id", i, row[0])
		}
	}
}

func TestReconstructTableWithoutColumns(t *testing.T) {
	in := exampleInput(t)
	opts := DefaultOptions(CSP)
	opts.CSPColumns = false // ablate §6.3 column extraction
	seg, err := Segment(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	table := ReconstructTable(seg)
	if len(table) != 15 {
		t.Fatalf("%d rows", len(table))
	}
	for i, row := range table {
		if len(row) != len(seg.Records[i].Extracts) {
			t.Errorf("row %d: %d cells for %d extracts (CSP rows are one cell per extract)", i, len(row), len(seg.Records[i].Extracts))
		}
	}
}

func TestWriteCSV(t *testing.T) {
	in := exampleInput(t)
	seg, err := SegmentProbabilistic(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, seg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 16 { // header + 15 records
		t.Fatalf("%d CSV lines, want 16", len(lines))
	}
	if !strings.Contains(lines[0], "Parcel") || !strings.Contains(lines[0], "Owner") {
		t.Errorf("header = %q", lines[0])
	}
	// Every data row has the same number of fields as the header.
	want := strings.Count(lines[0], ",")
	for i, line := range lines[1:] {
		if strings.Count(line, ",") < want {
			t.Errorf("row %d has fewer fields: %q", i+1, line)
		}
	}
}

func TestLabelName(t *testing.T) {
	if labelName(0) != "L1" || labelName(11) != "L12" {
		t.Errorf("labelName: %s %s", labelName(0), labelName(11))
	}
}

func TestPublicHarvestAPI(t *testing.T) {
	site, err := sitegen.GenerateBySlug("ohio", 42)
	if err != nil {
		t.Fatal(err)
	}
	h := &Harvester{
		Fetcher: MapFetcher(site.SiteMap()),
		Options: DefaultOptions(Probabilistic),
	}
	table, results, err := h.HarvestAll("/list1.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d pages", len(results))
	}
	want := len(site.Lists[0].Truth) + len(site.Lists[1].Truth)
	if table.NumRows() != want {
		t.Errorf("%d rows, want %d", table.NumRows(), want)
	}
	if len(table.Schema()) != len(table.Columns) {
		t.Error("schema incomplete")
	}
	// MergeRelation over the raw segmentations agrees with HarvestAll.
	var segs []*Segmentation
	for _, r := range results {
		segs = append(segs, r.Segmentation)
	}
	if m := MergeRelation(segs); m.NumRows() != table.NumRows() {
		t.Errorf("MergeRelation rows %d vs %d", m.NumRows(), table.NumRows())
	}
}

func TestPublicLinksAndDiscovery(t *testing.T) {
	site, err := sitegen.GenerateBySlug("lee", 42)
	if err != nil {
		t.Fatal(err)
	}
	f := MapFetcher(site.SiteMap())
	urls, _, err := DiscoverListPages(f, "/list1.html", 0)
	if err != nil || len(urls) != 2 {
		t.Fatalf("urls=%v err=%v", urls, err)
	}
	links := Links("/list1.html", site.Lists[0].HTML)
	if len(links) < len(site.Lists[0].Truth) {
		t.Errorf("only %d links", len(links))
	}
}

// TestWriteCSVRoundTrip verifies that parsing WriteCSV's output
// recovers exactly the reconstructed table (padded to uniform width)
// under the header row, for both a labeled (probabilistic) and an
// unlabeled (CSP, no columns) segmentation.
func TestWriteCSVRoundTrip(t *testing.T) {
	in := exampleInput(t)
	prob, err := SegmentProbabilistic(in)
	if err != nil {
		t.Fatal(err)
	}
	noCols := DefaultOptions(CSP)
	noCols.CSPColumns = false
	noCols.MineLabels = false
	cspSeg, err := Segment(in, noCols)
	if err != nil {
		t.Fatal(err)
	}
	for name, seg := range map[string]*Segmentation{"prob": prob, "csp": cspSeg} {
		var buf strings.Builder
		if err := WriteCSV(&buf, seg); err != nil {
			t.Fatalf("%s: WriteCSV: %v", name, err)
		}
		rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
		if err != nil {
			t.Fatalf("%s: parsing our own CSV: %v", name, err)
		}
		if len(seg.ColumnLabels) > 0 {
			header := rows[0]
			rows = rows[1:]
			if len(header) != len(seg.ColumnLabels) {
				t.Fatalf("%s: header width %d, want %d", name, len(header), len(seg.ColumnLabels))
			}
			for i, l := range seg.ColumnLabels {
				if l == "" {
					l = "L" + strconv.Itoa(i+1)
				}
				if header[i] != l {
					t.Errorf("%s: header[%d] = %q, want %q", name, i, header[i], l)
				}
			}
		}
		table := ReconstructTable(seg)
		width := 0
		for _, row := range table {
			if len(row) > width {
				width = len(row)
			}
		}
		if len(rows) != len(table) {
			t.Fatalf("%s: %d CSV rows for %d table rows", name, len(rows), len(table))
		}
		for i, row := range table {
			padded := make([]string, width)
			copy(padded, row)
			if !reflect.DeepEqual(rows[i], padded) {
				t.Errorf("%s: row %d = %q, want %q", name, i, rows[i], padded)
			}
		}
	}
}

// TestWriteCSVPadsToHeader is a regression test: when label mining
// produces more column labels than any record's widest assigned
// column, data rows must still be padded to the header's width so the
// CSV stays rectangular.
func TestWriteCSVPadsToHeader(t *testing.T) {
	seg := &Segmentation{
		Method:       Probabilistic,
		ColumnLabels: []string{"Name", "Address", "Phone"},
		Records: []Record{
			{
				Index:    0,
				Extracts: []extract.Extract{{Words: []string{"Ann"}}},
				Columns:  []int{0},
			},
			{
				Index:    1,
				Extracts: []extract.Extract{{Words: []string{"Bob"}}, {Words: []string{"12 Elm St"}}},
				Columns:  []int{0, 1},
			},
		},
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, seg); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not rectangular CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want header + 2 records", len(rows))
	}
	for i, row := range rows {
		if len(row) != 3 {
			t.Errorf("row %d has %d fields, want 3 (header width)", i, len(row))
		}
	}
	if rows[1][2] != "" || rows[2][2] != "" {
		t.Error("padding cells are not empty")
	}
}
