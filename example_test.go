package tableseg_test

import (
	"fmt"
	"log"
	"os"

	"tableseg"
)

// Two sampled list pages from one (imaginary) site plus the detail
// pages linked from the first: the only inputs the algorithms need.
const exList1 = `<html><body><h1>People Finder</h1>
<p>Search Results Below - Refine Query Anytime</p>
<table>
<tr><td>Ann Lee</td><td>12 Oak St</td><td>(555) 283-9922</td></tr>
<tr><td>Bob Day</td><td>99 Elm Rd</td><td>(555) 761-0301</td></tr>
<tr><td>Cal Roe</td><td>7 Pine Ave</td><td>(555) 440-1188</td></tr>
</table>
<p>Copyright 2004 PeopleFinder Inc</p></body></html>`

const exList2 = `<html><body><h1>People Finder</h1>
<p>Search Results Below - Refine Query Anytime</p>
<table>
<tr><td>Dee Fox</td><td>4 Elm Ct</td><td>(555) 019-3321</td></tr>
<tr><td>Eli Orr</td><td>31 Ash Ln</td><td>(555) 678-4410</td></tr>
</table>
<p>Copyright 2004 PeopleFinder Inc</p></body></html>`

var exDetails = []string{
	`<html><body><h2>Listing</h2><p>Name: Ann Lee</p><p>Street: 12 Oak St</p><p>Phone: (555) 283-9922</p></body></html>`,
	`<html><body><h2>Listing</h2><p>Name: Bob Day</p><p>Street: 99 Elm Rd</p><p>Phone: (555) 761-0301</p></body></html>`,
	`<html><body><h2>Listing</h2><p>Name: Cal Roe</p><p>Street: 7 Pine Ave</p><p>Phone: (555) 440-1188</p></body></html>`,
}

func exampleInput() tableseg.Input {
	in := tableseg.Input{
		ListPages: []tableseg.Page{{Name: "l1", HTML: exList1}, {Name: "l2", HTML: exList2}},
		Target:    0,
	}
	for i, d := range exDetails {
		in.DetailPages = append(in.DetailPages, tableseg.Page{Name: fmt.Sprintf("d%d", i+1), HTML: d})
	}
	return in
}

// The probabilistic method segments the list page and labels columns.
func ExampleSegmentProbabilistic() {
	seg, err := tableseg.SegmentProbabilistic(exampleInput())
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range seg.Records {
		fmt.Println(rec.Index+1, rec.Texts())
	}
	// Output:
	// 1 [Ann Lee 12 Oak St (555) 283-9922]
	// 2 [Bob Day 99 Elm Rd (555) 761-0301]
	// 3 [Cal Roe 7 Pine Ave (555) 440-1188]
}

// The CSP method solves the same instance with hard constraints.
func ExampleSegmentCSP() {
	seg, err := tableseg.SegmentCSP(exampleInput())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("status:", seg.CSPStatus)
	fmt.Println("records:", len(seg.Records))
	// Output:
	// status: solved
	// records: 3
}

// ReconstructTable rebuilds the relational view; WriteCSV exports it
// with the column names mined from the detail-page captions.
func ExampleWriteCSV() {
	seg, err := tableseg.SegmentProbabilistic(exampleInput())
	if err != nil {
		log.Fatal(err)
	}
	if err := tableseg.WriteCSV(os.Stdout, seg); err != nil {
		log.Fatal(err)
	}
	// Output:
	// Name,Street,Phone
	// Ann Lee,12 Oak St,(555) 283-9922
	// Bob Day,99 Elm Rd,(555) 761-0301
	// Cal Roe,7 Pine Ave,(555) 440-1188
}
