package tableseg

// Option is one functional configuration step applied by NewOptions.
// Options built this way are validated once, at construction, so a
// typo'd solver name or an out-of-range parameter surfaces as
// ErrBadOptions immediately instead of at the first Segment call.
type Option func(*Options)

// NewOptions builds a validated Options from the paper-reproduction
// defaults plus the given functional options, applied in order. The
// zero call NewOptions() is DefaultOptions(CSP); NewOptions(
// WithMethod(Probabilistic)) is DefaultOptions(Probabilistic), and so
// on — the helpers are the preferred replacement for the positional
// DefaultOptions(m)-then-mutate configuration path.
//
//	opts, err := tableseg.NewOptions(
//	    tableseg.WithMethod(tableseg.Probabilistic),
//	    tableseg.WithSolver("combined"),
//	)
func NewOptions(opts ...Option) (Options, error) {
	o := DefaultOptions(CSP)
	for _, apply := range opts {
		apply(&o)
	}
	if err := o.Validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// WithMethod selects the segmentation method (CSP, Probabilistic or
// Combined).
func WithMethod(m Method) Option {
	return func(o *Options) { o.Method = m }
}

// WithSolver names a registered solver to run, overriding the method's
// default ("csp", "probabilistic", "combined", "exact", "greedy",
// "uniform", or a caller's own registration). Unknown names are
// rejected by NewOptions with ErrBadOptions.
func WithSolver(name string) Option {
	return func(o *Options) { o.Solver = name }
}

// WithCSPParams replaces the constraint-solver configuration.
func WithCSPParams(p CSPParams) Option {
	return func(o *Options) { o.CSPParams = p }
}

// WithPHMMParams replaces the probabilistic-model configuration.
func WithPHMMParams(p PHMMParams) Option {
	return func(o *Options) { o.PHMMParams = p }
}

// WithMinSlotQuality sets the table-slot quality threshold below which
// the whole-page fallback fires (see Options.MinSlotQuality).
func WithMinSlotQuality(q float64) Option {
	return func(o *Options) { o.MinSlotQuality = q }
}

// WithMineLabels toggles §3.4 semantic column-label mining.
func WithMineLabels(on bool) Option {
	return func(o *Options) { o.MineLabels = on }
}
