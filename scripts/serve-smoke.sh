#!/usr/bin/env bash
# End-to-end smoke test of the tablesegd daemon (CI's serve-smoke job,
# also runnable locally via `make serve-smoke`):
#
#   1. build tableseg + tablesegd and render one synthetic site;
#   2. start the daemon and wait for /healthz;
#   3. segment the site through `tableseg -remote` and assert the JSON
#      is byte-identical to the in-process `tableseg -json` run;
#   4. fire two concurrent identical requests and check /varz serves
#      the coalescing and request counters;
#   5. SIGTERM the daemon and assert it drains cleanly (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:8899"
BASE="http://$ADDR"
tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

echo "serve-smoke: building"
go build -o "$tmp/tableseg" ./cmd/tableseg
go build -o "$tmp/tablesegd" ./cmd/tablesegd
go run ./cmd/sitegen -site allegheny -out "$tmp/corpus" >/dev/null

site="$tmp/corpus/allegheny"
args=(-list "$site/list1.html" -target 0)
i=1
while [ -f "$site/list1_detail$i.html" ]; do
    args+=(-detail "$site/list1_detail$i.html")
    i=$((i + 1))
done
echo "serve-smoke: site has $((i - 1)) detail pages"

echo "serve-smoke: local segmentation"
"$tmp/tableseg" "${args[@]}" -json >"$tmp/local.json"

echo "serve-smoke: starting tablesegd on $ADDR"
"$tmp/tablesegd" -addr "$ADDR" 2>"$tmp/daemon.log" &
daemon_pid=$!
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "serve-smoke: daemon died during startup" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '^ok$'

echo "serve-smoke: remote segmentation"
"$tmp/tableseg" "${args[@]}" -json -remote "$BASE" >"$tmp/remote.json"
if ! diff -u "$tmp/local.json" "$tmp/remote.json"; then
    echo "serve-smoke: FAIL remote -json differs from local" >&2
    exit 1
fi
echo "serve-smoke: remote output byte-identical to local"

echo "serve-smoke: concurrent identical requests"
"$tmp/tableseg" "${args[@]}" -json -remote "$BASE" >"$tmp/r1.json" &
p1=$!
"$tmp/tableseg" "${args[@]}" -json -remote "$BASE" >"$tmp/r2.json" &
p2=$!
wait "$p1" "$p2"
for f in r1 r2; do
    if ! diff -u "$tmp/local.json" "$tmp/$f.json"; then
        echo "serve-smoke: FAIL concurrent response $f differs from local" >&2
        exit 1
    fi
done

echo "serve-smoke: checking /varz"
curl -fsS "$BASE/varz" >"$tmp/varz.json"
for field in '"requests"' '"coalesce"' '"hits"' '"misses"' '"stages"' '"tokenHits"'; do
    if ! grep -q "$field" "$tmp/varz.json"; then
        echo "serve-smoke: FAIL /varz missing $field" >&2
        cat "$tmp/varz.json" >&2
        exit 1
    fi
done
total=$(sed -n 's/.*"total":\([0-9]*\).*/\1/p' "$tmp/varz.json" | head -1)
if [ -z "$total" ] || [ "$total" -lt 3 ]; then
    echo "serve-smoke: FAIL /varz total=$total, want >=3" >&2
    exit 1
fi

echo "serve-smoke: draining via SIGTERM"
kill -TERM "$daemon_pid"
drain_code=0
wait "$daemon_pid" || drain_code=$?
daemon_pid=""
if [ "$drain_code" -ne 0 ]; then
    echo "serve-smoke: FAIL daemon exited $drain_code after SIGTERM" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
grep -q 'drained' "$tmp/daemon.log"

echo "serve-smoke: PASS"
