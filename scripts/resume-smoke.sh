#!/usr/bin/env bash
# End-to-end smoke test of batch checkpoint/resume (CI's resume-smoke
# job, also runnable locally via `make resume-smoke`):
#
#   1. build tableseg and render the synthetic corpus;
#   2. build a -batch manifest covering every site;
#   3. reference run: the whole batch, cold cache, -json;
#   4. interrupted run: a fresh cache dir, kill -9 as soon as the first
#      result has been flushed;
#   5. resume over the half-written cache with -resume and assert the
#      JSONL output is byte-identical to the reference (and that at
#      least one task was actually replayed from the journal);
#   6. repeat the diff for -csv output.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
run_pid=""
cleanup() {
    [ -n "$run_pid" ] && kill -9 "$run_pid" 2>/dev/null
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

echo "resume-smoke: building"
go build -o "$tmp/tableseg" ./cmd/tableseg
go run ./cmd/sitegen -out "$tmp/corpus" >/dev/null

echo "resume-smoke: writing batch manifest"
manifest="$tmp/batch.json"
{
    printf '['
    first=1
    for site in "$tmp/corpus"/*/; do
        name="$(basename "$site")"
        lists=""
        for f in "$site"list*.html; do
            case "$f" in *_detail*) continue ;; esac
            lists="$lists\"$f\","
        done
        details=""
        i=1
        while [ -f "${site}list1_detail$i.html" ]; do
            details="$details\"${site}list1_detail$i.html\","
            i=$((i + 1))
        done
        [ -n "$lists" ] && [ -n "$details" ] || continue
        [ "$first" -eq 1 ] || printf ','
        first=0
        printf '{"id":"%s","lists":[%s],"target":0,"details":[%s]}' \
            "$name" "${lists%,}" "${details%,}"
    done
    printf ']\n'
} >"$manifest"
tasks=$(grep -o '"id"' "$manifest" | wc -l)
echo "resume-smoke: manifest has $tasks tasks"
if [ "$tasks" -lt 2 ]; then
    echo "resume-smoke: FAIL need at least 2 tasks to interrupt between" >&2
    exit 1
fi

echo "resume-smoke: reference batch run (cold cache)"
"$tmp/tableseg" -batch "$manifest" -json -cache-dir "$tmp/cache-ref" >"$tmp/ref.jsonl"

echo "resume-smoke: interrupted batch run"
"$tmp/tableseg" -batch "$manifest" -json -cache-dir "$tmp/cache" \
    >"$tmp/partial.jsonl" 2>"$tmp/partial.log" &
run_pid=$!
for _ in $(seq 1 600); do
    [ -s "$tmp/partial.jsonl" ] && break
    kill -0 "$run_pid" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$run_pid" 2>/dev/null || true
wait "$run_pid" 2>/dev/null || true
run_pid=""
echo "resume-smoke: killed after $(wc -l <"$tmp/partial.jsonl") of $tasks results"

echo "resume-smoke: resuming over the interrupted cache"
"$tmp/tableseg" -batch "$manifest" -json -cache-dir "$tmp/cache" -resume -stats \
    >"$tmp/resumed.jsonl" 2>"$tmp/resumed.log"
if ! diff -u "$tmp/ref.jsonl" "$tmp/resumed.jsonl"; then
    echo "resume-smoke: FAIL resumed -json output differs from the reference" >&2
    exit 1
fi
echo "resume-smoke: resumed -json output byte-identical to the reference"
if ! grep -Eq 'stats: batch tasks=[0-9]+ errors=0 resumed=[1-9]' "$tmp/resumed.log"; then
    echo "resume-smoke: FAIL no task was replayed from the journal" >&2
    cat "$tmp/resumed.log" >&2
    exit 1
fi
grep '^stats: batch' "$tmp/resumed.log" | sed 's/^/resume-smoke: /'

echo "resume-smoke: -csv diff"
"$tmp/tableseg" -batch "$manifest" -csv -cache-dir "$tmp/cache-ref" >"$tmp/ref.csv"
"$tmp/tableseg" -batch "$manifest" -csv -cache-dir "$tmp/cache" -resume >"$tmp/resumed.csv"
if ! diff -u "$tmp/ref.csv" "$tmp/resumed.csv"; then
    echo "resume-smoke: FAIL resumed -csv output differs from the reference" >&2
    exit 1
fi
echo "resume-smoke: resumed -csv output byte-identical to the reference"

echo "resume-smoke: PASS"
