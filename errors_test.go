package tableseg

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestSentinelRoundTrips verifies every exported sentinel survives %w
// wrapping under errors.Is — the contract the pipeline's error
// construction relies on.
func TestSentinelRoundTrips(t *testing.T) {
	sentinels := map[string]error{
		"ErrTooFewListPages":  ErrTooFewListPages,
		"ErrNoListPages":      ErrNoListPages,
		"ErrNoDetailPages":    ErrNoDetailPages,
		"ErrBadTarget":        ErrBadTarget,
		"ErrNoTableSlot":      ErrNoTableSlot,
		"ErrNoDetailEvidence": ErrNoDetailEvidence,
		"ErrCSPUnsatisfiable": ErrCSPUnsatisfiable,
		"ErrBadOptions":       ErrBadOptions,
	}
	for name, sentinel := range sentinels {
		wrapped := fmt.Errorf("site %q page %d: %w", "example", 3, sentinel)
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("%s does not round-trip through %%w", name)
		}
	}
	// The deprecated alias must match the sentinel it aliases.
	if !errors.Is(fmt.Errorf("x: %w", ErrNoListPages), ErrTooFewListPages) {
		t.Error("ErrNoListPages is not an alias of ErrTooFewListPages")
	}
}

// TestTypedErrorsFromAPI drives each reachable input-validation failure
// through the public entry points and classifies it with errors.Is.
func TestTypedErrorsFromAPI(t *testing.T) {
	list := Page{Name: "l", HTML: "<html><body><b>Alpha One</b> <b>Beta Two</b></body></html>"}
	detail := Page{Name: "d", HTML: "<html><body>Alpha One</body></html>"}

	cases := []struct {
		name string
		in   Input
		want error
	}{
		{"no list pages", Input{DetailPages: []Page{detail}}, ErrTooFewListPages},
		{"no detail pages", Input{ListPages: []Page{list}}, ErrNoDetailPages},
		{"bad target", Input{ListPages: []Page{list}, Target: 5, DetailPages: []Page{detail}}, ErrBadTarget},
		{"no table slot", Input{
			ListPages:   []Page{{Name: "e1", HTML: "<html><body></body></html>"}},
			DetailPages: []Page{detail},
		}, ErrNoTableSlot},
		{"no detail evidence", Input{
			ListPages:   []Page{list},
			DetailPages: []Page{{Name: "u", HTML: "<html><body>zzz qqq ppp</body></html>"}},
		}, ErrNoDetailEvidence},
	}
	for _, tc := range cases {
		_, err := SegmentCSP(tc.in)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	bad := DefaultOptions(CSP)
	bad.MinSlotQuality = 2
	in := Input{ListPages: []Page{list}, DetailPages: []Page{detail}}
	if _, err := Segment(in, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad options: err = %v, want ErrBadOptions", err)
	}
}

// TestSegmentContextRootCancellation verifies the root context entry
// point surfaces cancellation and deadline expiry.
func TestSegmentContextRootCancellation(t *testing.T) {
	in := Input{
		ListPages:   []Page{{Name: "l", HTML: "<html><body><b>Alpha One</b> <b>Beta Two</b></body></html>"}},
		DetailPages: []Page{{Name: "d", HTML: "<html><body>Alpha One</body></html>"}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SegmentContext(ctx, in, DefaultOptions(Probabilistic)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: err = %v, want context.Canceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := SegmentContext(expired, in, DefaultOptions(CSP)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}
