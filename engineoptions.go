package tableseg

// EngineOption is one functional configuration step applied by
// NewEngineConfig — the engine-level counterpart of Option, covering
// the worker pool and the artifact-cache tiers.
type EngineOption func(*EngineConfig)

// NewEngineConfig builds a validated EngineConfig from defaults (CSP
// options, GOMAXPROCS workers, bounded in-memory cache) plus the given
// functional options, applied in order. Invalid combinations — negative
// budgets, Resume without caching, bad pipeline options — surface as
// ErrBadOptions here instead of at NewEngine.
//
//	cfg, err := tableseg.NewEngineConfig(
//	    tableseg.WithEngineOptions(opts),
//	    tableseg.WithCacheDir("/var/cache/tableseg"),
//	    tableseg.WithResume(true),
//	)
//	eng, err := tableseg.NewEngine(cfg)
func NewEngineConfig(opts ...EngineOption) (EngineConfig, error) {
	cfg := EngineConfig{Options: DefaultOptions(CSP)}
	for _, apply := range opts {
		apply(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return EngineConfig{}, err
	}
	return cfg, nil
}

// WithEngineOptions sets the pipeline options applied to every task
// without a per-task override.
func WithEngineOptions(o Options) EngineOption {
	return func(c *EngineConfig) { c.Options = o }
}

// WithConcurrency bounds the engine's worker pool (0 selects
// GOMAXPROCS).
func WithConcurrency(n int) EngineOption {
	return func(c *EngineConfig) { c.Concurrency = n }
}

// WithObserver attaches a per-stage instrumentation observer.
func WithObserver(o Observer) EngineOption {
	return func(c *EngineConfig) { c.Observer = o }
}

// WithCacheDir adds a persistent disk tier rooted at dir behind the
// in-memory cache: artifacts survive restarts (enabling WithResume
// across process death) and may be shared by several processes.
func WithCacheDir(dir string) EngineOption {
	return func(c *EngineConfig) { c.CacheDir = dir }
}

// WithCacheMemoryBudget bounds the in-memory cache tier in bytes
// (0 selects the default budget).
func WithCacheMemoryBudget(bytes int64) EngineOption {
	return func(c *EngineConfig) { c.CacheMemoryBytes = bytes }
}

// WithCacheDiskBudget caps the disk cache tier in bytes (0 selects the
// default budget; only meaningful with WithCacheDir).
func WithCacheDiskBudget(bytes int64) EngineOption {
	return func(c *EngineConfig) { c.CacheDiskBytes = bytes }
}

// WithResume makes the engine consult its result journal before
// computing a task, so a batch re-run over a warm store skips every
// already-finished task and reproduces its results byte-identically.
func WithResume(on bool) EngineOption {
	return func(c *EngineConfig) { c.Resume = on }
}

// WithoutCache disables the artifact store entirely (benchmarking the
// cache's contribution; incompatible with WithResume).
func WithoutCache() EngineOption {
	return func(c *EngineConfig) { c.DisableCache = true }
}
